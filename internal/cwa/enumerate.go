package cwa

import (
	"errors"
	"sort"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/query"
)

// EnumOptions bounds the exhaustive enumeration of CWA-solutions.
type EnumOptions struct {
	// MaxStates bounds the number of search states explored (default 200000).
	MaxStates int
	// MaxSolutions stops after this many CWA-solutions (0 = unbounded).
	MaxSolutions int
	// MaxNullsPerState prunes runaway branches (default 64).
	MaxNullsPerState int
	// ChaseOptions is used for the universality check.
	ChaseOptions chase.Options
	// Stats, if non-nil, receives search statistics.
	Stats *EnumStats
}

// EnumStats reports how an enumeration went.
type EnumStats struct {
	// States is the number of search states explored.
	States int
	// PrunedEgd counts states discarded for violating an egd.
	PrunedEgd int
	// PrunedUniversality counts states discarded because their target
	// reduct already had no homomorphism into the universal solution.
	PrunedUniversality int
	// Found is the number of CWA-solutions returned (up to isomorphism).
	Found int
	// Truncated reports whether a bound was hit.
	Truncated bool
}

func (o EnumOptions) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return 200000
}

func (o EnumOptions) maxNulls() int {
	if o.MaxNullsPerState > 0 {
		return o.MaxNullsPerState
	}
	return 64
}

// ErrEnumerationTruncated reports that the search hit a bound, so the
// returned list may be incomplete.
var ErrEnumerationTruncated = errors.New("cwa: enumeration truncated by limits")

// Enumerate exhaustively enumerates the CWA-solutions for src under s, up
// to isomorphism (renaming of nulls).
//
// The search walks all successful α-chases: states are (instance, partial α)
// pairs; at each state every justification whose α-value is already chosen
// is fired to closure, then the first unresolved justification branches over
// its possible witness tuples. Candidate witness values are the current
// active domain plus fresh nulls in canonical order — sufficient for
// CWA-solutions because a universal solution cannot use constants beyond
// those forced by the source and the dependencies. States violating an egd
// are pruned (a successful chase never applies an egd, Lemma 4.5). Complete
// states are filtered by universality (Theorem 4.8) and deduplicated up to
// isomorphism.
//
// The error is ErrEnumerationTruncated when a bound was hit (the result may
// then be incomplete), or a chase error from the universality check.
func Enumerate(s *dependency.Setting, src *instance.Instance, opt EnumOptions) ([]*instance.Instance, error) {
	u, err := chase.UniversalSolution(s, src, opt.ChaseOptions)
	if err != nil {
		if chase.IsEgdFailure(err) {
			return nil, nil // no solutions at all
		}
		return nil, err
	}

	e := &enumerator{
		s:         s,
		src:       src,
		universal: u,
		opt:       opt,
	}
	e.walk(src.Clone(), map[string]query.Binding{}, 0)

	var out []*instance.Instance
	for _, t := range e.found {
		out = append(out, t)
	}
	if opt.Stats != nil {
		e.stats.States = e.states
		e.stats.Found = len(out)
		e.stats.Truncated = e.truncated
		*opt.Stats = e.stats
	}
	if e.truncated {
		return out, ErrEnumerationTruncated
	}
	return out, nil
}

type enumerator struct {
	s         *dependency.Setting
	src       *instance.Instance
	universal *instance.Instance
	opt       EnumOptions
	states    int
	truncated bool
	found     []*instance.Instance
	stats     EnumStats
}

// walk explores the state (cur, alpha): fire chosen justifications to
// closure, prune on egd violations, then branch on the first unresolved
// justification. nextNull is the next fresh null label for canonical naming.
func (e *enumerator) walk(cur *instance.Instance, alpha map[string]query.Binding, nextNull int64) {
	e.states++
	if e.states > e.opt.maxStates() ||
		(e.opt.MaxSolutions > 0 && len(e.found) >= e.opt.MaxSolutions) {
		e.truncated = true
		return
	}
	if len(cur.Nulls()) > e.opt.maxNulls() {
		e.truncated = true
		return
	}

	// Close under already-chosen justifications.
	for {
		progress := false
		for _, d := range e.s.AllTGDs() {
			for _, env := range chase.BodyMatches(e.s, d, cur) {
				key := chase.JustificationKeyOf(d, env)
				w, chosen := alpha[key]
				if !chosen {
					continue
				}
				full := env.Clone()
				for z, v := range w {
					full[z] = v
				}
				for _, a := range chase.HeadAtoms(d, full) {
					if cur.Add(a) {
						progress = true
					}
				}
			}
		}
		if !progress {
			break
		}
	}

	// Prune: a successful α-chase never violates an egd along the way
	// (adding atoms cannot repair a violation, and applying the egd would
	// contradict Lemma 4.5 for successful chases).
	for _, d := range e.s.EGDs {
		if !chase.SatisfiesEGD(d, cur) {
			e.stats.PrunedEgd++
			return
		}
	}

	// Prune: universality is antitone in the atom set — if the current
	// target reduct already has no homomorphism into the universal solution,
	// no superset can have one (restrict the hom), so the whole subtree
	// contains no CWA-solution (Theorem 4.8).
	if !hom.Exists(cur.Reduct(e.s.Target), e.universal) {
		e.stats.PrunedUniversality++
		return
	}

	// Find the first unresolved justification, deterministically.
	type open struct {
		d   *dependency.TGD
		env query.Binding
		key string
	}
	var first *open
	for _, d := range e.s.AllTGDs() {
		for _, env := range chase.BodyMatches(e.s, d, cur) {
			key := chase.JustificationKeyOf(d, env)
			if _, chosen := alpha[key]; chosen {
				continue
			}
			cand := &open{d: d, env: env, key: key}
			if first == nil || cand.key < first.key {
				first = cand
			}
		}
	}

	if first == nil {
		// Complete: every justification resolved and fired; cur is the
		// result of a successful α-chase. Keep it if universal and new.
		t := cur.Reduct(e.s.Target)
		if !hom.Exists(t, e.universal) {
			return
		}
		for _, prev := range e.found {
			if hom.Isomorphic(prev, t) {
				return
			}
		}
		e.found = append(e.found, t)
		return
	}

	// Branch over witness tuples for the unresolved justification: each
	// existential variable takes an existing domain value or a fresh null;
	// fresh nulls are introduced in canonical order to cut symmetry.
	dom := cur.Dom()
	d := first.d
	k := len(d.Exists)
	assign := make([]instance.Value, k)
	var rec func(i int, freshUsed int64)
	rec = func(i int, freshUsed int64) {
		if e.truncated {
			return
		}
		if i == k {
			w := make(query.Binding, k)
			for j, z := range d.Exists {
				w[z] = assign[j]
			}
			alpha2 := make(map[string]query.Binding, len(alpha)+1)
			for kk, vv := range alpha {
				alpha2[kk] = vv
			}
			alpha2[first.key] = w
			e.walk(cur.Clone(), alpha2, nextNull+freshUsed)
			return
		}
		for _, v := range dom {
			assign[i] = v
			rec(i+1, freshUsed)
		}
		// Previously assigned fresh slots of this witness.
		for f := int64(0); f < freshUsed; f++ {
			assign[i] = instance.Null(nextNull + f)
			rec(i+1, freshUsed)
		}
		// One genuinely new fresh null (introducing more than one new label
		// at position i is symmetric to this choice).
		assign[i] = instance.Null(nextNull + freshUsed)
		rec(i+1, freshUsed+1)
	}
	rec(0, 0)
}

// Incomparable returns the subsets of solutions that are pairwise
// incomparable: no one is a homomorphic image of another (Example 5.3's
// notion). It reports the solutions that are not a homomorphic image of any
// other solution in the list, along with the full pairwise matrix.
func Incomparable(sols []*instance.Instance) (pairwise [][]bool, incomparable []int) {
	n := len(sols)
	pairwise = make([][]bool, n)
	for i := range pairwise {
		pairwise[i] = make([]bool, n)
		for j := range pairwise[i] {
			if i == j {
				continue
			}
			// pairwise[i][j]: sols[j] is a homomorphic image of sols[i].
			_, onto := hom.FindOnto(sols[i], sols[j], 0)
			pairwise[i][j] = onto
		}
	}
	for j := 0; j < n; j++ {
		image := false
		for i := 0; i < n; i++ {
			if i != j && pairwise[i][j] {
				image = true
				break
			}
		}
		if !image {
			incomparable = append(incomparable, j)
		}
	}
	return pairwise, incomparable
}

// SortBySize orders instances by atom count then string, for stable output.
func SortBySize(sols []*instance.Instance) {
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].Len() != sols[j].Len() {
			return sols[i].Len() < sols[j].Len()
		}
		return sols[i].String() < sols[j].String()
	})
}
