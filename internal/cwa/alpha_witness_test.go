package cwa

import (
	"testing"

	"repro/internal/instance"
)

// FindPresolutionAlpha exposes the justification structure: for the paper's
// T2 the two d2-justifications must share z2 (the egd-merged F-value) and
// take distinct z1 values.
func TestFindPresolutionAlphaT2(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	t2 := mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	alpha, ok := FindPresolutionAlpha(s, src, t2)
	if !ok {
		t.Fatal("T2 is a presolution: a witness α must exist")
	}
	wb, okB := alpha["d2(a;b)."]
	wc, okC := alpha["d2(a;c)."]
	if !okB || !okC {
		t.Fatalf("missing d2 justifications in %v", alpha)
	}
	if wb["z2"] != wc["z2"] {
		t.Fatalf("the two F-justifications must share z2: %v vs %v", wb, wc)
	}
	if wb["z2"] != instance.Null(3) {
		t.Fatalf("z2 must be the F-null _3, got %v", wb["z2"])
	}
	if wb["z1"] == wc["z1"] {
		t.Fatalf("T2 has three E-atoms: z1 values must differ: %v vs %v", wb, wc)
	}
	if _, ok := alpha["d3(_3;a)."]; !ok {
		t.Fatalf("d3 justification missing in %v", alpha)
	}
}

func TestFindPresolutionAlphaNegative(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	// E(_3,b) is unjustifiable.
	tpp := mustInstance(t, `E(a,b). E(_3,b). F(a,_1). G(_1,_2).`)
	if _, ok := FindPresolutionAlpha(s, src, tpp); ok {
		t.Fatal("no α can justify E(_3,b)")
	}
}
