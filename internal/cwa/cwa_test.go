package cwa

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/score"
)

func mustSetting(t testing.TB, src string) *dependency.Setting {
	t.Helper()
	s, err := parser.ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInstance(t testing.TB, src string) *instance.Instance {
	t.Helper()
	ins, err := parser.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

const example21 = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

const source21 = `M(a,b). N(a,b). N(a,c).`

func TestExistsExample21(t *testing.T) {
	s := mustSetting(t, example21)
	ok, err := Exists(s, mustInstance(t, source21), chase.Options{})
	if err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
}

func TestExistsFalseOnEgdClash(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	ok, err := Exists(s, mustInstance(t, `N(a,b). N(a,c).`), chase.Options{})
	if err != nil || ok {
		t.Fatalf("Exists = %v, %v; want false", ok, err)
	}
}

// Theorem 5.1: Core_D(S) is a (minimal) CWA-solution.
func TestMinimalIsCWASolution(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	core, err := Minimal(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.1 / 4.9: Core is T3 up to renaming.
	t3 := mustInstance(t, `E(a,b). F(a,_1). G(_1,_2).`)
	if !hom.Isomorphic(core, t3) {
		t.Fatalf("Core = %v, want ≅ %v", core, t3)
	}
	ok, err := IsCWASolution(s, src, core, chase.Options{})
	if err != nil || !ok {
		t.Fatalf("core must be a CWA-solution: %v %v", ok, err)
	}
	if !score.IsCore(core) {
		t.Fatal("Minimal must return a core")
	}
}

// Example 4.9: T2 is a CWA-solution.
func TestT2IsCWASolution(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	t2 := mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	ok, err := IsCWASolution(s, src, t2, chase.Options{})
	if err != nil || !ok {
		t.Fatalf("T2 must be a CWA-solution: %v %v", ok, err)
	}
}

// Example 4.9: T' = {E(a,b), F(a,⊥), G(⊥,b)} is a CWA-presolution but not a
// CWA-solution (the fact ∃x (F(a,x) ∧ G(x,b)) does not follow from S and Σ).
func TestPresolutionNotSolution(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	tp := mustInstance(t, `E(a,b). F(a,_0). G(_0,b).`)
	if !IsCWAPresolution(s, src, tp) {
		t.Fatal("T' is a CWA-presolution")
	}
	universal, err := IsUniversal(s, src, tp, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if universal {
		t.Fatal("T' must not be universal")
	}
	ok, err := IsCWASolution(s, src, tp, chase.Options{})
	if err != nil || ok {
		t.Fatalf("T' must not be a CWA-solution: %v %v", ok, err)
	}
}

// Example 4.9: T” = {E(a,b), E(⊥3,b), F(a,⊥1), G(⊥1,⊥2)} is a universal
// solution but not a CWA-presolution (E(⊥3,b) is not justified).
func TestUniversalNotPresolution(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	tpp := mustInstance(t, `E(a,b). E(_3,b). F(a,_1). G(_1,_2).`)
	universal, err := IsUniversal(s, src, tpp, chase.Options{})
	if err != nil || !universal {
		t.Fatalf("T'' must be universal: %v %v", universal, err)
	}
	if IsCWAPresolution(s, src, tpp) {
		t.Fatal("T'' must not be a CWA-presolution (E(_3,b) unjustified)")
	}
	ok, err := IsCWASolution(s, src, tpp, chase.Options{})
	if err != nil || ok {
		t.Fatalf("T'' must not be a CWA-solution: %v %v", ok, err)
	}
}

// T1 of Example 2.1 invents constants and is not universal, hence no
// CWA-solution.
func TestT1NotCWASolution(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	t1 := mustInstance(t, `E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).`)
	ok, err := IsCWASolution(s, src, t1, chase.Options{})
	if err != nil || ok {
		t.Fatalf("T1 must not be a CWA-solution: %v %v", ok, err)
	}
}

func TestEnumerateExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no CWA-solutions enumerated")
	}
	core := mustInstance(t, `E(a,b). F(a,_1). G(_1,_2).`)
	t2 := mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	foundCore, foundT2 := false, false
	for _, sol := range sols {
		if hom.Isomorphic(sol, core) {
			foundCore = true
		}
		if hom.Isomorphic(sol, t2) {
			foundT2 = true
		}
		// Every enumerated solution must pass the independent check.
		ok, err := IsCWASolution(s, src, sol, chase.Options{})
		if err != nil || !ok {
			t.Errorf("enumerated %v fails IsCWASolution: %v %v", sol, ok, err)
		}
	}
	if !foundCore {
		t.Error("enumeration must find the core")
	}
	if !foundT2 {
		t.Error("enumeration must find T2")
	}
}

const example53 = `
source P/1.
target E/3, F/3.
st:
  d1: P(x) -> exists z1,z2,z3,z4 : E(x,z1,z3) & E(x,z2,z4).
target-deps:
  d2: E(x,x1,y) & E(x,x2,y) -> F(x,x1,x2).
`

// Example 5.3: T and T' are CWA-solutions and neither is a homomorphic
// image of the other.
func TestExample53Incomparable(t *testing.T) {
	s := mustSetting(t, example53)
	src := mustInstance(t, `P(1).`)
	T := mustInstance(t, `E(1,_1,_3). E(1,_2,_4). F(1,_1,_1). F(1,_2,_2).`)
	Tp := mustInstance(t, `E(1,_1,_3). E(1,_2,_3). F(1,_1,_1). F(1,_2,_2). F(1,_1,_2). F(1,_2,_1).`)
	for name, sol := range map[string]*instance.Instance{"T": T, "T'": Tp} {
		ok, err := IsCWASolution(s, src, sol, chase.Options{})
		if err != nil || !ok {
			t.Fatalf("%s must be a CWA-solution: %v %v", name, ok, err)
		}
	}
	if _, onto := hom.FindOnto(T, Tp, 0); onto {
		t.Fatal("T' must not be a homomorphic image of T")
	}
	if _, onto := hom.FindOnto(Tp, T, 0); onto {
		t.Fatal("T must not be a homomorphic image of T'")
	}
}

func TestExample53EnumerationGrowth(t *testing.T) {
	s := mustSetting(t, example53)
	// n = 1: at least 2 pairwise-incomparable CWA-solutions (T and T').
	// n = 2: at least 4 = 2^2. (The paper: ≥ 2^n.)
	counts := make(map[int]int)
	for n := 1; n <= 2; n++ {
		src := instance.New()
		for i := 1; i <= n; i++ {
			src.Add(instance.NewAtom("P", instance.Const(string(rune('0'+i)))))
		}
		sols, err := Enumerate(s, src, EnumOptions{MaxStates: 500000})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		_, inc := Incomparable(sols)
		counts[n] = len(inc)
		want := 1 << n
		if len(inc) < want {
			t.Errorf("n=%d: %d incomparable CWA-solutions, want ≥ %d (of %d total)",
				n, len(inc), want, len(sols))
		}
	}
	if counts[2] < 2*counts[1] {
		t.Errorf("incomparable count must grow: %v", counts)
	}
}

// Proposition 5.4: for settings with egd-only target dependencies, every
// CWA-solution is a homomorphic image of CanSol.
func TestCanSolMaximalEgdOnly(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(c,d). W(a,e).`)
	can, err := CanSol(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsCWASolution(s, src, can, chase.Options{})
	if err != nil || !ok {
		t.Fatalf("CanSol must be a CWA-solution here: %v %v (%v)", ok, err, can)
	}
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no solutions enumerated")
	}
	for _, sol := range sols {
		if _, onto := hom.FindOnto(can, sol, 0); !onto {
			t.Errorf("CWA-solution %v is not a homomorphic image of CanSol %v", sol, can)
		}
	}
}

// Proposition 5.4, second class: full tgds + egds.
func TestCanSolMaximalFullAndEgds(t *testing.T) {
	s := mustSetting(t, `
source R/2.
target E/2, T/2.
st:
  R(x,y) -> E(x,y).
target-deps:
  E(x,y) & E(y,z) -> T(x,z).
`)
	if !s.FullAndEgds() {
		t.Fatal("setting should be full+egds class")
	}
	src := mustInstance(t, `R(a,b). R(b,c).`)
	can, err := CanSol(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Full tgds with a null-free source: the unique CWA-solution is the
	// null-free closure.
	want := mustInstance(t, `E(a,b). E(b,c). T(a,c).`)
	if !can.Equal(want) {
		t.Fatalf("CanSol = %v, want %v", can, want)
	}
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !hom.Isomorphic(sols[0], want) {
		t.Fatalf("full-tgd setting must have exactly one CWA-solution, got %v", sols)
	}
}

// CanSol on Example 2.1 (not in Prop 5.4's classes): still a CWA-solution
// here — it coincides with T2 up to renaming.
func TestCanSolExample21(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	can, err := CanSol(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2 := mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	if !hom.Isomorphic(can, t2) {
		t.Fatalf("CanSol = %v, want ≅ T2 %v", can, t2)
	}
	ok, err := IsCWASolution(s, src, can, chase.Options{})
	if err != nil || !ok {
		t.Fatalf("CanSol(Ex 2.1) is a CWA-solution: %v %v", ok, err)
	}
}

func TestMinimalNoSolution(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	if _, err := Minimal(s, src, chase.Options{}); err == nil {
		t.Fatal("Minimal must fail when no solution exists")
	}
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil || len(sols) != 0 {
		t.Fatalf("Enumerate = %v, %v; want empty", sols, err)
	}
}

// Corollary 5.2 on a family of random-ish weakly acyclic settings: the
// existence of CWA-solutions coincides with the existence of universal
// solutions (chase success), and when they exist the core is one.
func TestCorollary52(t *testing.T) {
	s := mustSetting(t, example21)
	sources := []string{
		`M(a,b).`,
		`N(a,b).`,
		`M(a,a). N(b,b). N(b,c).`,
		source21,
	}
	for _, srcText := range sources {
		src := mustInstance(t, srcText)
		exists, err := Exists(s, src, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		core, err := Minimal(s, src, chase.Options{})
		if exists != (err == nil) {
			t.Fatalf("source %s: Exists=%v but Minimal err=%v", srcText, exists, err)
		}
		if exists {
			ok, err := IsCWASolution(s, src, core, chase.Options{})
			if err != nil || !ok {
				t.Fatalf("source %s: core not a CWA-solution", srcText)
			}
		}
	}
}
