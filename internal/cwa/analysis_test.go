package cwa

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/hom"
)

// Theorem 5.1's minimality, order-theoretically: the core is minimal among
// all enumerated CWA-solutions of Example 2.1, and it is the ONLY minimal
// one ("unique minimal CWA-solution").
func TestCoreIsUniqueMinimal(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, `M(a,b). N(a,b).`)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	core, err := Minimal(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mins := MinimalOf(sols)
	if len(mins) != 1 {
		t.Fatalf("exactly one minimal CWA-solution expected, got indexes %v of %v", mins, sols)
	}
	if !hom.Isomorphic(sols[mins[0]], core) {
		t.Fatalf("the unique minimal solution %v must be the core %v", sols[mins[0]], core)
	}
	if !IsMinimalAmong(core, sols) {
		t.Fatal("core must be minimal among all CWA-solutions")
	}
}

// Example 5.3: no maximal CWA-solution exists for S_1 — the enumerated
// space has at least two maximal-incomparable elements and MaximalOf is
// empty.
func TestExample53NoMaximal(t *testing.T) {
	s := mustSetting(t, example53)
	src := mustInstance(t, `P(1).`)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) < 2 {
		t.Fatalf("need several CWA-solutions, got %v", sols)
	}
	if maxs := MaximalOf(sols); len(maxs) != 0 {
		t.Fatalf("Example 5.3 has no maximal CWA-solution; MaximalOf = %v", maxs)
	}
}

// Egd-only settings: CanSol is the unique maximal element (Prop 5.4).
func TestEgdOnlyCanSolUniqueMaximal(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(c,d). W(a,e).`)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	can, err := CanSol(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsMaximalAmong(can, sols) {
		t.Fatal("CanSol must be maximal")
	}
	maxs := MaximalOf(sols)
	if len(maxs) == 0 {
		t.Fatal("a maximal element must exist for egd-only settings")
	}
	for _, i := range maxs {
		if _, onto := hom.FindOnto(can, sols[i], 0); !onto {
			t.Fatalf("maximal element %v must be an image of CanSol", sols[i])
		}
	}
}

func TestEnumerateStats(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, `M(a,b). N(a,b).`)
	var stats EnumStats
	sols, err := Enumerate(s, src, EnumOptions{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Found != len(sols) || stats.States == 0 {
		t.Fatalf("stats = %+v for %d solutions", stats, len(sols))
	}
	if stats.PrunedUniversality == 0 {
		t.Fatal("constant-valued branches must have been pruned by universality")
	}
	if stats.Truncated {
		t.Fatal("small instance must not truncate")
	}
	// Truncation is reported through stats and the error.
	var tstats EnumStats
	_, err = Enumerate(s, src, EnumOptions{MaxStates: 2, Stats: &tstats})
	if err == nil || !tstats.Truncated {
		t.Fatalf("truncation: err=%v stats=%+v", err, tstats)
	}
}

func TestDescribeSpace(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, `M(a,b). N(a,b).`)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	SortBySize(sols)
	report := DescribeSpace(sols)
	for _, want := range []string{"CWA-solutions", "minimal", "maximal"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if DescribeSpace(nil) != "no CWA-solutions\n" {
		t.Error("empty space report")
	}
	// Example 5.3: the report flags the absence of a maximal solution.
	s53 := mustSetting(t, example53)
	sols53, err := Enumerate(s53, mustInstance(t, `P(1).`), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(DescribeSpace(sols53), "no maximal CWA-solution") {
		t.Errorf("Example 5.3 report:\n%s", DescribeSpace(sols53))
	}
}
