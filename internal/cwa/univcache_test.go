package cwa

import (
	"fmt"
	"sync"
	"testing"
)

// TestUnivMemoCapHolds drives far more distinct keys than the capacity
// through the memo and checks the bound is never exceeded, eviction is LRU,
// and a get refreshes recency.
func TestUnivMemoCapHolds(t *testing.T) {
	const capacity = 8
	c := newUnivMemo(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.put(fmt.Sprintf("k%d", i), i%2 == 0)
		if got := c.len(); got > capacity {
			t.Fatalf("after %d puts: %d resident entries, cap %d", i+1, got, capacity)
		}
	}
	if got := c.len(); got != capacity {
		t.Fatalf("memo not full after overflow: len=%d, cap %d", got, capacity)
	}
	// The last `capacity` keys survive, older ones were evicted.
	for i := 0; i < 10*capacity; i++ {
		_, ok := c.get(fmt.Sprintf("k%d", i))
		if want := i >= 9*capacity; ok != want {
			t.Fatalf("key k%d resident=%v, want %v (LRU eviction)", i, ok, want)
		}
	}

	// A get refreshes recency: touch the oldest resident key, overflow by
	// one, and the touched key must survive while its successor is evicted.
	oldest := fmt.Sprintf("k%d", 9*capacity)
	second := fmt.Sprintf("k%d", 9*capacity+1)
	if _, ok := c.get(oldest); !ok {
		t.Fatalf("setup: %s should be resident", oldest)
	}
	c.put("fresh", true)
	if _, ok := c.get(oldest); !ok {
		t.Fatalf("%s was evicted despite being most recently used", oldest)
	}
	if _, ok := c.get(second); ok {
		t.Fatalf("%s survived although it was the least recently used", second)
	}

	// Re-putting an existing key updates in place, without growth.
	before := c.len()
	c.put("fresh", false)
	if v, ok := c.get("fresh"); !ok || v {
		t.Fatalf("re-put did not update value: v=%v ok=%v", v, ok)
	}
	if got := c.len(); got != before {
		t.Fatalf("re-put changed residency: len %d → %d", before, got)
	}
}

// TestUnivMemoConcurrent hammers the memo from many goroutines (a -race
// workload mirroring concurrent Enumerate walkers); the bound must hold
// throughout.
func TestUnivMemoConcurrent(t *testing.T) {
	const capacity = 32
	c := newUnivMemo(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%64)
				if _, ok := c.get(key); !ok {
					c.put(key, i%2 == 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.len(); got > capacity {
		t.Fatalf("after concurrent load: %d resident entries, cap %d", got, capacity)
	}
}
