package cwa

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chase"
)

// TestEnumerateWorkerInvariance: the returned solution list — canonical
// representatives in sorted order — must be byte-identical for the
// sequential and the parallel search.
func TestEnumerateWorkerInvariance(t *testing.T) {
	cases := []struct {
		name, setting, source string
	}{
		{"example21", example21, source21},
		{"example53", example53, `P(1).`},
	}
	for _, tc := range cases {
		s := mustSetting(t, tc.setting)
		src := mustInstance(t, tc.source)
		base, err := Enumerate(s, src, EnumOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(base) == 0 {
			t.Fatalf("%s: no solutions enumerated", tc.name)
		}
		for _, workers := range []int{2, 4} {
			got, err := Enumerate(s, src, EnumOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if len(got) != len(base) {
				t.Fatalf("%s workers=%d: %d solutions, want %d",
					tc.name, workers, len(got), len(base))
			}
			for i := range got {
				if got[i].String() != base[i].String() {
					t.Fatalf("%s workers=%d: solution %d differs:\n%v\n%v",
						tc.name, workers, i, got[i], base[i])
				}
			}
		}
	}
}

// TestEnumerateCanceled: a done context aborts the enumeration with
// chase.ErrCanceled, whichever stage (the universal-solution chase or the
// state walk) observes it first.
func TestEnumerateCanceled(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Enumerate(s, src, EnumOptions{ChaseOptions: chase.Options{Ctx: ctx}})
	if !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestIncomparableMatchesSequential pins the parallel row computation of
// Incomparable against a direct sequential recomputation.
func TestIncomparableMatchesSequential(t *testing.T) {
	s := mustSetting(t, example53)
	src := mustInstance(t, `P(1).`)
	sols, err := Enumerate(s, src, EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairwise, inc := Incomparable(sols)
	seq := make([][]bool, len(sols))
	for i := range seq {
		seq[i] = make([]bool, len(sols))
		incomparableRow(sols, seq, i)
	}
	for i := range seq {
		for j := range seq[i] {
			if pairwise[i][j] != seq[i][j] {
				t.Fatalf("pairwise[%d][%d] = %v, sequential says %v",
					i, j, pairwise[i][j], seq[i][j])
			}
		}
	}
	if len(inc) == 0 {
		t.Fatal("Example 5.3 must have incomparable solutions")
	}
}
