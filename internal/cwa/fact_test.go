package cwa

import (
	"testing"
	"testing/quick"

	"repro/internal/chase"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/query"
)

// The Chandra–Merlin bridge behind Theorem 4.8, checked through the actual
// FO evaluator: I ⊨ ϕ_T iff there is a homomorphism T → I.
func TestCanonicalFactIffHomomorphism(t *testing.T) {
	mk := func(seed uint32, nullBase int64) *instance.Instance {
		ins := instance.New()
		for i := 0; i < 4; i++ {
			bits := (seed >> uint(i*4)) & 15
			var u, v instance.Value
			if bits&1 == 0 {
				u = instance.Const(string(rune('a' + (bits>>1)&1)))
			} else {
				u = instance.Null(nullBase + int64((bits>>1)&3))
			}
			if bits&8 == 0 {
				v = instance.Const(string(rune('a' + (bits>>2)&1)))
			} else {
				v = instance.Null(nullBase + int64((bits>>2)&3))
			}
			ins.Add(instance.NewAtom("E", u, v))
		}
		return ins
	}
	f := func(s1, s2 uint32) bool {
		from := mk(s1, 0)
		to := mk(s2, 100)
		fact := query.CanonicalFact(from)
		return fact.Holds(to) == hom.Exists(from, to)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Definition 4.7 verified directly on Example 2.1: a presolution is a
// CWA-solution iff its canonical fact holds in every solution — checked on
// concrete solutions through FO evaluation.
func TestDefinition47Direct(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, source21)
	solutions := []*instance.Instance{
		mustInstance(t, `E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).`),   // T1
		mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`), // T2
		mustInstance(t, `E(a,b). F(a,_1). G(_1,_2).`),                   // T3
		mustInstance(t, `E(a,b). E(x,y). F(a,q). G(q,r). G(q,s).`),      // a constant-rich solution
	}
	for _, sol := range solutions {
		if !chase.IsSolution(s, src, sol) {
			t.Fatalf("test fixture %v must be a solution", sol)
		}
	}
	// T' = {E(a,b), F(a,⊥), G(⊥,b)}: a presolution whose canonical fact
	// FAILS in T2 (Example 4.9: no F-G path to b there) — not a CWA-solution.
	tp := mustInstance(t, `E(a,b). F(a,_0). G(_0,b).`)
	if !IsCWAPresolution(s, src, tp) {
		t.Fatal("T' is a presolution")
	}
	fact := query.CanonicalFact(tp)
	if fact.Holds(solutions[1]) {
		t.Fatal("ϕ_T' must fail in T2")
	}
	// T2's canonical fact holds in every listed solution.
	fact2 := query.CanonicalFact(mustInstance(t, `E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`))
	for _, sol := range solutions {
		if !fact2.Holds(sol) {
			t.Fatalf("ϕ_T2 must hold in solution %v", sol)
		}
	}
}
