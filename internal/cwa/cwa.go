// Package cwa implements the paper's primary contribution: CWA-presolutions
// and CWA-solutions for data exchange settings with target dependencies
// (Section 4), the structure of the CWA-solution space (Section 5), and the
// decision procedures of Section 6.
//
// The load-bearing facts, all verified by this package's tests:
//
//   - Theorem 4.8: T is a CWA-solution iff T is a universal solution and a
//     CWA-presolution.
//   - Theorem 5.1 / Corollary 5.2: CWA-solutions exist iff universal
//     solutions exist, and Core_D(S) is the unique minimal CWA-solution.
//   - Example 5.3: maximal CWA-solutions need not exist; there can be
//     exponentially many pairwise incomparable ones.
//   - Proposition 5.4: for egd-only or egd+full-tgd settings, CanSol_D(S)
//     is a maximal CWA-solution.
//   - Proposition 6.6: for weakly acyclic settings, a CWA-solution is
//     computable in polynomial time (we compute Core of the standard chase).
package cwa

import (
	"errors"
	"fmt"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/hom"
	"repro/internal/instance"
	"repro/internal/query"
	"repro/internal/score"
)

// ErrNoSolution reports that no (CWA-)solution exists: the standard chase
// failed on an egd.
var ErrNoSolution = errors.New("cwa: no solution exists (chase failed)")

// Exists decides Existence-of-CWA-Solutions(D) for the source instance: by
// Corollary 5.2 this is equivalent to the existence of universal solutions,
// which the standard chase decides for weakly acyclic settings. For general
// settings the problem is undecidable (Theorem 6.2); a chase overrunning its
// budget surfaces as ErrBudgetExceeded.
func Exists(s *dependency.Setting, src *instance.Instance, opt chase.Options) (bool, error) {
	_, err := chase.Standard(s, src, opt)
	switch {
	case err == nil:
		return true, nil
	case chase.IsEgdFailure(err):
		return false, nil
	default:
		return false, err
	}
}

// Minimal computes Core_D(S), the unique minimal CWA-solution
// (Theorem 5.1), as the core of the standard-chase universal solution. This
// is the polynomial-time CWA-solution of Proposition 6.6. It returns
// ErrNoSolution if the chase fails.
func Minimal(s *dependency.Setting, src *instance.Instance, opt chase.Options) (*instance.Instance, error) {
	u, err := chase.UniversalSolution(s, src, opt)
	if err != nil {
		if chase.IsEgdFailure(err) {
			return nil, fmt.Errorf("%w: %v", ErrNoSolution, err)
		}
		return nil, err
	}
	return score.Core(u), nil
}

// CanSol computes the canonical solution CanSol_D(S): the result of the
// canonical successful α-chase (chase.Canonical). By Proposition 5.4 it is
// a maximal CWA-solution when the setting's target dependencies are egds
// only, or when all tgds are full and the target dependencies are egds and
// full tgds. For other settings it is still a CWA-presolution candidate but
// need not be maximal (Example 5.3) — and need not even be a CWA-solution.
func CanSol(s *dependency.Setting, src *instance.Instance, opt chase.Options) (*instance.Instance, error) {
	res, _, err := chase.Canonical(s, src, opt)
	if err != nil {
		if chase.IsEgdFailure(err) {
			return nil, fmt.Errorf("%w: %v", ErrNoSolution, err)
		}
		return nil, err
	}
	return res.Target, nil
}

// IsUniversal reports whether t is a universal solution for src: t must be
// a solution and admit a homomorphism into some universal solution (the
// standard-chase result), which by composition gives homomorphisms into
// every solution.
func IsUniversal(s *dependency.Setting, src, t *instance.Instance, opt chase.Options) (bool, error) {
	if !chase.IsSolution(s, src, t) {
		return false, nil
	}
	u, err := chase.UniversalSolution(s, src, opt)
	if err != nil {
		if chase.IsEgdFailure(err) {
			// No solutions at all — unreachable given t is one.
			return false, nil
		}
		return false, err
	}
	return hom.Exists(t, u), nil
}

// IsCWASolution decides whether t is a CWA-solution for src under s via the
// Theorem 4.8 characterisation: t must be a universal solution and a
// CWA-presolution. The presolution check is an exponential search in the
// worst case (the problem is NP for weakly acyclic settings, Section 6).
func IsCWASolution(s *dependency.Setting, src, t *instance.Instance, opt chase.Options) (bool, error) {
	universal, err := IsUniversal(s, src, t, opt)
	if err != nil || !universal {
		return false, err
	}
	return IsCWAPresolution(s, src, t), nil
}

// IsCWAPresolution decides whether S ∪ T is the result of a successful
// α-chase of S for some α (Definition 4.6).
//
// By Lemma 4.5 a successful α-chase applies only tgds, so S ∪ T must be the
// least fixpoint of firing tgd heads under some consistent choice of
// witnesses: for every tgd body match over S ∪ T there must be a chosen
// witness tuple whose head atoms lie inside S ∪ T (otherwise the match would
// remain α-applicable), the union of fired heads must produce exactly T, the
// derivation must be well-founded (reachable bottom-up from S), and the
// result must satisfy the egds. The search branches over witness choices,
// one per justification (d, ū, v̄).
func IsCWAPresolution(s *dependency.Setting, src, t *instance.Instance) bool {
	_, ok := FindPresolutionAlpha(s, src, t)
	return ok
}

// FindPresolutionAlpha searches for the witness behind a CWA-presolution:
// a choice of one head-witness tuple per justification (d, ū, v̄) whose
// least fixpoint from the source is exactly S ∪ T. It returns the chosen
// witnesses keyed by justification (chase.JustificationKeyOf) — the
// relevant fragment of the α whose successful chase produces T — and
// whether one exists.
func FindPresolutionAlpha(s *dependency.Setting, src, t *instance.Instance) (map[string]query.Binding, bool) {
	full := instance.Union(src, t)
	// Egds must hold in the final result (Definition 4.2(1b)).
	for _, d := range s.EGDs {
		if !chase.SatisfiesEGD(d, full) {
			return nil, false
		}
	}
	// Collect all body matches over the final instance, grouped by
	// justification, with their witness sets.
	var decisions []presolDecision
	var keys []string
	seen := make(map[string]bool)
	for _, d := range s.AllTGDs() {
		for _, env := range chase.BodyMatches(s, d, full) {
			key := chase.JustificationKeyOf(d, env)
			if seen[key] {
				continue
			}
			seen[key] = true
			ws := chase.HeadWitnesses(d, full, env)
			if len(ws) == 0 {
				return nil, false // not even a solution
			}
			decisions = append(decisions, presolDecision{d: d, env: env, witnesses: ws, isST: isSourceToTarget(s, d)})
			keys = append(keys, key)
		}
	}
	// Backtracking over witness choices; at each leaf verify that the least
	// fixpoint of the chosen firings equals S ∪ T exactly.
	choice := make([]query.Binding, len(decisions))
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(decisions) {
			return lfpEquals(src, full, decisions, choice)
		}
		for _, w := range decisions[i].witnesses {
			choice[i] = w
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	if !try(0) {
		return nil, false
	}
	alpha := make(map[string]query.Binding, len(decisions))
	for i, key := range keys {
		alpha[key] = choice[i]
	}
	return alpha, true
}

// presolDecision is one justification (d, ū, v̄) over the candidate result,
// with the witness tuples whose head atoms all lie inside it.
type presolDecision struct {
	d         *dependency.TGD
	env       query.Binding
	witnesses []query.Binding
	isST      bool
}

func isSourceToTarget(s *dependency.Setting, d *dependency.TGD) bool {
	for _, st := range s.ST {
		if st == d {
			return true
		}
	}
	return false
}

// lfpEquals computes the least fixpoint of firing the chosen witnesses from
// src and compares it with full. A firing is enabled once its tgd body holds
// in the current instance; s-t bodies hold from the start because the
// σ-reduct never changes during a chase.
func lfpEquals(src, full *instance.Instance, decisions []presolDecision, choice []query.Binding) bool {
	cur := src.Clone()
	fired := make([]bool, len(decisions))
	for {
		progress := false
		for i, dec := range decisions {
			if fired[i] {
				continue
			}
			if !dec.isST && !bodyAtomsPresent(dec.d, cur, dec.env) {
				continue
			}
			env := dec.env.Clone()
			for z, v := range choice[i] {
				env[z] = v
			}
			for _, a := range chase.HeadAtoms(dec.d, env) {
				cur.Add(a)
			}
			fired[i] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	return cur.Equal(full)
}

// bodyAtomsPresent reports whether every body atom of a conjunctive-bodied
// tgd holds in cur under env.
func bodyAtomsPresent(d *dependency.TGD, cur *instance.Instance, env query.Binding) bool {
	for _, a := range d.BodyAtoms {
		args := make([]instance.Value, len(a.Terms))
		for i, t := range a.Terms {
			if t.IsVar() {
				args[i] = env[t.Var]
			} else {
				args[i] = t.Val
			}
		}
		if !cur.Has(instance.Atom{Rel: a.Rel, Args: args}) {
			return false
		}
	}
	return true
}
