package cwa

import (
	"container/list"
	"sync"
)

// univCacheCap bounds the per-Enumerate universality memo. Adversarial
// settings can drive the walk through an unbounded stream of distinct target
// reducts; before the bound the memo (a sync.Map) grew with every one of
// them for the lifetime of the run. Eviction only ever costs a recomputation
// (the memoized answer is a pure function of the reduct's content), so the
// solution set is unaffected.
const univCacheCap = 1 << 16

// univMemo is a mutex-guarded, capacity-bounded LRU memo from target-reduct
// content keys to universality verdicts — the internal/server lru eviction
// discipline, without the eviction callback and metrics the enumerator does
// not need. Safe for concurrent walkers.
type univMemo struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type univEntry struct {
	key string
	val bool
}

func newUnivMemo(capacity int) *univMemo {
	return &univMemo{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the memoized verdict and marks the key most recently used.
func (c *univMemo) get(key string) (val, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	if !found {
		return false, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*univEntry).val, true
}

// put inserts or refreshes the key, evicting least-recently-used entries
// while over capacity.
func (c *univMemo) put(key string, val bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.m[key]; found {
		el.Value.(*univEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&univEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*univEntry).key)
	}
}

// len returns the number of resident entries.
func (c *univMemo) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
