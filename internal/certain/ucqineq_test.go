package certain

import (
	"testing"
)

func TestAnswersUCQIneqEgdOnlyDispatch(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). W(a,e). N(c,d).`)
	u := mustUCQ(t, "q(x) :- F(x,y), y != x.")
	fast, err := AnswersUCQIneq(s, u, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the characterisation: certain⊓ = □Q(CanSol).
	can, err := cwaCanSol(s, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Box(s, u, can, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Equal(slow) {
		t.Fatalf("dispatch %v != □Q(CanSol) %v", fast, slow)
	}
}

func TestAnswersUCQIneqFullDispatch(t *testing.T) {
	s := mustSetting(t, `
source R/2.
target E/2, T/2.
st:
  R(x,y) -> E(x,y).
target-deps:
  E(x,y) -> T(x,y).
  T(x,y) & E(y,z) -> T(x,z).
`)
	src := mustInstance(t, `R(a,b). R(b,c).`)
	u := mustUCQ(t, "q(x,z) :- T(x,z), x != z.")
	got, err := AnswersUCQIneq(s, u, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Null-free closure: T = {(a,b),(b,c),(a,c)}, all with x != z.
	if got.Len() != 3 {
		t.Fatalf("answers = %v", got)
	}
}

func TestAnswersUCQIneqGenericFallback(t *testing.T) {
	// Example 2.1 is neither egd-only nor full: the generic path runs.
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	u := mustUCQ(t, "q(x) :- E(x,y), y != x.")
	got, err := AnswersUCQIneq(s, u, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byDef, err := ByDefinition(s, u, src, CertainCap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(byDef) {
		t.Fatalf("fallback %v != by definition %v", got, byDef)
	}
}

func TestAnswersUCQIneqRejectsTwoInequalities(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	u := mustUCQ(t, "q(x) :- E(x,y), y != x, F(x,z), z != x.")
	if _, err := AnswersUCQIneq(s, u, src, Options{}); err == nil {
		t.Fatal("two inequalities per disjunct must be rejected")
	}
}

// Randomized cross-check: the PTIME fixpoint must agree with the
// exponential valuation enumeration across random egd-only workloads.
func TestQuickFixpointAgreesWithEnumeration(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	queries := []string{
		"q(x) :- F(x,y), y != x.",
		"q(x,y) :- F(x,y).",
		"q(y) :- F(x,y), x != y.",
		"q() :- F(x,y), F(y,z), z != x.",
	}
	for seed := int64(0); seed < 10; seed++ {
		// Small sources keep the enumeration affordable (≤ ~6 nulls).
		src := genwlEgdOnlySource(4, seed)
		can, err := cwaCanSol(s, src, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(can.Nulls()) > 6 {
			continue
		}
		for _, qs := range queries {
			u := mustUCQ(t, qs)
			fast, err := BoxUCQIneqPTime(s, u, can)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, qs, err)
			}
			slow, err := Box(s, u, can, Options{})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, qs, err)
			}
			if !fast.Equal(slow) {
				t.Errorf("seed %d query %s: fixpoint %v != enumeration %v\n(CanSol %v)",
					seed, qs, fast, slow, can)
			}
		}
	}
}
