package certain

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// PossibleUCQ decides in polynomial time whether a Boolean pure UCQ holds
// in SOME possible world of T — the Boolean maybe answer ◇Q(T) ≠ ∅ — for
// settings WITHOUT target dependencies (Libkin's case, where Rep(T) is all
// valuations). A disjunct can be made true by some valuation iff its body
// atoms match T with unification: nulls may be identified with each other
// or with constants, consistently per match, because any such partial
// identification extends to a full valuation (there is no Σt to violate).
func PossibleUCQ(s *dependency.Setting, u query.UCQ, t *instance.Instance) (bool, error) {
	if s.HasTargetDependencies() {
		return false, fmt.Errorf("certain: PossibleUCQ requires a setting without target dependencies")
	}
	if !u.Pure() {
		return false, fmt.Errorf("certain: PossibleUCQ requires a UCQ without inequalities")
	}
	for _, d := range u.Disjuncts {
		if len(d.Head) != 0 {
			return false, fmt.Errorf("certain: PossibleUCQ requires Boolean disjuncts")
		}
		if matchWithUnification(d.Atoms, t) {
			return true, nil
		}
	}
	return false, nil
}

// matchWithUnification searches a mapping of the query atoms onto atoms of
// t where query variables bind to t-values and t-nulls may be identified
// with each other or with constants through a union-find; identifying two
// distinct constants fails.
func matchWithUnification(atoms []query.Atom, t *instance.Instance) bool {
	uf := newUnionFind(t.Dom())
	binding := map[string]instance.Value{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(atoms) {
			return true
		}
		a := atoms[i]
		found := false
		t.Tuples(a.Rel, func(args []instance.Value) bool {
			if len(args) != len(a.Terms) {
				return true
			}
			// Snapshot union-find and binding for backtracking.
			savedParent := make(map[instance.Value]instance.Value, len(uf.parent))
			for k, v := range uf.parent {
				savedParent[k] = v
			}
			savedBinding := make(map[string]instance.Value, len(binding))
			for k, v := range binding {
				savedBinding[k] = v
			}
			ok := true
			for j, term := range a.Terms {
				if !term.IsVar() {
					if !uf.union(term.Val, args[j]) {
						ok = false
						break
					}
					continue
				}
				if prev, bound := binding[term.Var]; bound {
					if !uf.union(prev, args[j]) {
						ok = false
						break
					}
					continue
				}
				binding[term.Var] = args[j]
			}
			if ok && rec(i+1) {
				found = true
				return false
			}
			uf.parent = savedParent
			binding = savedBinding
			return true
		})
		return found
	}
	return rec(0)
}
