package certain

import (
	"testing"
	"testing/quick"

	"repro/internal/instance"
	"repro/internal/query"
)

const noDepsSetting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
`

func TestPossibleUCQBasics(t *testing.T) {
	s := mustSetting(t, noDepsSetting)
	tgt := mustInstance(t, `E(a,_0). F(_0,b).`)
	cases := []struct {
		q    string
		want bool
	}{
		{"q() :- E('a','b').", true},          // value _0 as b
		{"q() :- E('a','a').", true},          // value _0 as a
		{"q() :- E('b','a').", false},         // constants fixed
		{"q() :- E('a',x), F(x,'b').", true},  // join through the null
		{"q() :- E('a',x), F(x,'a').", false}, // F's second arg is the constant b
		{"q() :- G(x,y).", false},             // no G atoms at all
	}
	for _, c := range cases {
		u := mustUCQ(t, c.q)
		got, err := PossibleUCQ(s, u, tgt)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("PossibleUCQ(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPossibleUCQNullIdentification(t *testing.T) {
	s := mustSetting(t, noDepsSetting)
	// E(_0,_1), E(_1,_2): a 2-path of nulls can collapse into a self-loop.
	tgt := mustInstance(t, `E(_0,_1). E(_1,_2).`)
	u := mustUCQ(t, "q() :- E(x,x).")
	got, err := PossibleUCQ(s, u, tgt)
	if err != nil || !got {
		t.Fatalf("self-loop possible by collapsing: %v %v", got, err)
	}
	// But E(a,_0) with a constant head cannot become E(b,·).
	tgt2 := mustInstance(t, `E(a,_0).`)
	u2 := mustUCQ(t, "q() :- E('b',x).")
	got2, err := PossibleUCQ(s, u2, tgt2)
	if err != nil || got2 {
		t.Fatalf("constants cannot move: %v %v", got2, err)
	}
}

// Cross-check against the exponential Diamond enumeration on random small
// targets: PossibleUCQ(q) ⟺ ◇q(T) nonempty.
func TestQuickPossibleAgreesWithDiamond(t *testing.T) {
	s := mustSetting(t, noDepsSetting)
	queries := []query.UCQ{
		mustUCQ(t, "q() :- E(x,x)."),
		mustUCQ(t, "q() :- E(x,y), F(y,z)."),
		mustUCQ(t, "q() :- E('a',x), E(x,y)."),
		mustUCQ(t, "q() :- E(x,y), E(y,x)."),
	}
	f := func(seed uint32) bool {
		tgt := instance.New()
		for i := 0; i < 3; i++ {
			bits := (seed >> uint(i*5)) & 31
			mkVal := func(b uint32) instance.Value {
				if b&1 == 0 {
					return instance.Const(string(rune('a' + b>>1&1)))
				}
				return instance.Null(int64(b >> 1 & 3))
			}
			rel := "E"
			if bits&16 != 0 {
				rel = "F"
			}
			tgt.Add(instance.NewAtom(rel, mkVal(bits), mkVal(bits>>2)))
		}
		for _, u := range queries {
			fast, err := PossibleUCQ(s, u, tgt)
			if err != nil {
				return false
			}
			dia, err := Diamond(s, u, tgt, Options{})
			if err != nil {
				return false
			}
			if fast != (dia.Len() > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPossibleUCQRejections(t *testing.T) {
	withDeps := mustSetting(t, example21)
	u := mustUCQ(t, "q() :- E(x,y).")
	if _, err := PossibleUCQ(withDeps, u, mustInstance(t, `E(a,b).`)); err == nil {
		t.Fatal("must reject settings with target dependencies")
	}
	s := mustSetting(t, noDepsSetting)
	if _, err := PossibleUCQ(s, mustUCQ(t, "q(x) :- E(x,y)."), mustInstance(t, `E(a,b).`)); err == nil {
		t.Fatal("must reject non-Boolean queries")
	}
	if _, err := PossibleUCQ(s, mustUCQ(t, "q() :- E(x,y), x != y."), mustInstance(t, `E(a,b).`)); err == nil {
		t.Fatal("must reject inequalities")
	}
}
