package certain

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
)

func mustSetting(t testing.TB, src string) *dependency.Setting {
	t.Helper()
	s, err := parser.ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInstance(t testing.TB, src string) *instance.Instance {
	t.Helper()
	ins, err := parser.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func mustUCQ(t testing.TB, src string) query.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

const example21 = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

// A small source so that by-definition semantics stay cheap.
const smallSource = `M(a,b). N(a,b).`

func TestRepNoNulls(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,b).`)
	reps, err := Rep(s, tgt, mustUCQ(t, "q(x) :- E(x,y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Equal(tgt) {
		t.Fatalf("Rep of null-free instance must be itself: %v", reps)
	}
}

func TestRepFiltersEgdViolations(t *testing.T) {
	s := mustSetting(t, example21)
	// F(a,_0), F(a,b): valuations must send _0 to b, else d4 is violated.
	tgt := mustInstance(t, `F(a,_0). F(a,b). G(_0,_1). G(b,_1).`)
	reps, err := Rep(s, tgt, mustUCQ(t, "q() :- F(x,y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if r.RelLen("F") != 1 {
			t.Fatalf("rep violates functional F: %v", r)
		}
	}
	if len(reps) == 0 {
		t.Fatal("some valuation must survive")
	}
}

func TestBoxAndDiamondSingleSolution(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,b). E(a,_1). F(a,_2). G(_2,_3).`)
	q := mustUCQ(t, "q(x,y) :- E(x,y).")
	box, err := Box(s, q, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Certain E-facts: only E(a,b) — _1 can be valued anywhere.
	want := query.NewTupleSet(query.Tuple{instance.Const("a"), instance.Const("b")})
	if !box.Equal(want) {
		t.Fatalf("Box = %v, want %v", box, want)
	}
	dia, err := Diamond(s, q, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !box.SubsetOf(dia) || dia.Len() <= box.Len() {
		t.Fatalf("Diamond %v must strictly contain Box %v here", dia, box)
	}
}

// Section 7.1: on a copying setting all four semantics equal Q evaluated on
// the copied instance.
func TestCopyingSettingAllSemanticsAgree(t *testing.T) {
	s := mustSetting(t, `
source E/2, P/1.
target Ep/2, Pp/1.
st:
  E(x,y) -> Ep(x,y).
  P(x) -> Pp(x).
`)
	src := mustInstance(t, `E(a,b). E(b,c). P(a).`)
	copied := mustInstance(t, `Ep(a,b). Ep(b,c). Pp(a).`)
	q := mustUCQ(t, "q(x) :- Ep(x,y), Pp(x).")
	want := q.Answers(copied)
	for _, sem := range []Semantics{CertainCap, CertainCup, MaybeCap, MaybeCup} {
		got, err := ByDefinition(s, q, src, sem, Options{})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if !got.Equal(want) {
			t.Errorf("%v = %v, want %v", sem, got, want)
		}
		fast, err := Answers(s, q, src, sem, Options{})
		if err != nil {
			t.Fatalf("%v fast: %v", sem, err)
		}
		if !fast.Equal(want) {
			t.Errorf("%v (characterised) = %v, want %v", sem, fast, want)
		}
	}
}

// Lemma 7.7: for pure UCQs, certain⊓ = certain⊔ = □Q(T) = Q(T)↓ for every
// CWA-solution T.
func TestLemma77(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	u := mustUCQ(t, `
q(x,y) :- E(x,y).
q(x,y) :- F(x,y).
`)
	fast, err := CertainUCQ(s, u, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := query.NewTupleSet(query.Tuple{instance.Const("a"), instance.Const("b")})
	if !fast.Equal(want) {
		t.Fatalf("CertainUCQ = %v, want %v", fast, want)
	}
	for _, sem := range []Semantics{CertainCap, CertainCup} {
		byDef, err := ByDefinition(s, u, src, sem, Options{})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if !byDef.Equal(fast) {
			t.Errorf("%v by definition = %v, want %v", sem, byDef, fast)
		}
	}
	// Q(T)↓ is the same for every CWA-solution.
	sols, err := cwa.Enumerate(s, src, cwa.EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range sols {
		if got := query.NullFree(u.Answers(sol)); !got.Equal(fast) {
			t.Errorf("Q(T)↓ on %v = %v, want %v", sol, got, fast)
		}
	}
}

// Theorem 7.1: certain⊔ = □Q(Core) and maybe⊓ = ◇Q(Core); and on egd-only
// settings certain⊓ = □Q(CanSol), maybe⊔ = ◇Q(CanSol).
func TestTheorem71CoreCharacterisation(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	q := mustUCQ(t, "q(x) :- E(x,y), F(x,z), y != z.")
	opt := Options{}

	core, err := cwa.Minimal(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxCore, err := Box(s, q, core, opt)
	if err != nil {
		t.Fatal(err)
	}
	cup, err := ByDefinition(s, q, src, CertainCup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cup.Equal(boxCore) {
		t.Errorf("certain⊔ by def = %v, □Q(Core) = %v", cup, boxCore)
	}
	diaCore, err := Diamond(s, q, core, opt)
	if err != nil {
		t.Fatal(err)
	}
	mcap, err := ByDefinition(s, q, src, MaybeCap, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !mcap.Equal(diaCore) {
		t.Errorf("maybe⊓ by def = %v, ◇Q(Core) = %v", mcap, diaCore)
	}
}

func TestTheorem71CanSolCharacterisation(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(c,d). W(a,e).`)
	q := mustUCQ(t, "q(x,y) :- F(x,y).")
	opt := Options{}
	can, err := cwa.CanSol(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxCan, err := Box(s, q, can, opt)
	if err != nil {
		t.Fatal(err)
	}
	capDef, err := ByDefinition(s, q, src, CertainCap, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !capDef.Equal(boxCan) {
		t.Errorf("certain⊓ by def = %v, □Q(CanSol) = %v", capDef, boxCan)
	}
	diaCan, err := Diamond(s, q, can, opt)
	if err != nil {
		t.Fatal(err)
	}
	mcupDef, err := ByDefinition(s, q, src, MaybeCup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !mcupDef.Equal(diaCan) {
		t.Errorf("maybe⊔ by def = %v, ◇Q(CanSol) = %v", mcupDef, diaCan)
	}
}

// Corollary 7.2: certain⊓ ⊆ certain⊔ ⊆ maybe⊓ ⊆ maybe⊔.
func TestCorollary72Chain(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	queries := []string{
		"q(x) :- E(x,y).",
		"q(x,y) :- E(x,y).",
		"q(x) :- F(x,y), G(y,z).",
		"q(x) :- E(x,y), y != x.",
	}
	for _, qs := range queries {
		q := mustUCQ(t, qs)
		var sets []*query.TupleSet
		for _, sem := range []Semantics{CertainCap, CertainCup, MaybeCap, MaybeCup} {
			got, err := ByDefinition(s, q, src, sem, Options{})
			if err != nil {
				t.Fatalf("%s %v: %v", qs, sem, err)
			}
			sets = append(sets, got)
		}
		for i := 0; i+1 < len(sets); i++ {
			if !sets[i].SubsetOf(sets[i+1]) {
				t.Errorf("%s: chain broken at %d: %v ⊄ %v", qs, i, sets[i], sets[i+1])
			}
		}
	}
}

// The PTIME fixpoint algorithm agrees with the exponential valuation
// enumeration on egd-only settings.
func TestBoxUCQIneqPTimeAgreesWithBox(t *testing.T) {
	s := mustSetting(t, `
source N/2, W/2.
target F/2.
st:
  N(x,y) -> exists z : F(x,z).
  W(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	sources := []string{
		`N(a,b). W(a,e). N(c,d).`,
		`N(a,b). N(c,d).`,
		`W(a,b). W(c,d). N(c,x).`,
	}
	queries := []string{
		"q(x,y) :- F(x,y).",
		"q(x) :- F(x,y), y != x.",
		"q(x) :- F(x,y).\nq(y) :- F(y,z), z != y.",
	}
	for _, srcText := range sources {
		src := mustInstance(t, srcText)
		can, err := cwa.CanSol(s, src, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			u := mustUCQ(t, qs)
			fast, err := BoxUCQIneqPTime(s, u, can)
			if err != nil {
				t.Fatalf("%s / %s: %v", srcText, qs, err)
			}
			slow, err := Box(s, u, can, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !fast.Equal(slow) {
				t.Errorf("src %s query %s: PTIME %v != enumeration %v", srcText, qs, fast, slow)
			}
		}
	}
}

func TestBoxUCQIneqPTimeRejectsWrongInputs(t *testing.T) {
	s := mustSetting(t, example21) // has a target tgd
	u := mustUCQ(t, "q(x) :- E(x,y).")
	if _, err := BoxUCQIneqPTime(s, u, mustInstance(t, "E(a,b).")); err == nil {
		t.Fatal("must reject settings with target tgds")
	}
	s2 := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
`)
	u2 := mustUCQ(t, "q(x) :- F(x,y), x != y, F(y,x), y != x.")
	if _, err := BoxUCQIneqPTime(s2, u2, mustInstance(t, "F(a,b).")); err == nil {
		t.Fatal("must reject two inequalities per disjunct")
	}
}

// A certain answer forced by an inequality interacting with the egd: with
// F functional and F(a,_0), F(a,b), any valuation sends _0 to b.
func TestInequalityCertainViaEgd(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	tgt := mustInstance(t, `F(a,b). F(c,_0).`)
	// q(x): F(x,y) with y != b — certain for c only if _0 can never be b;
	// _0 is free, so not certain. For a it is false (b = b).
	u := mustUCQ(t, "q(x) :- F(x,y), y != 'b'.")
	fast, err := BoxUCQIneqPTime(s, u, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 0 {
		t.Fatalf("nothing is certain: %v", fast)
	}
	slow, err := Box(s, u, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Equal(fast) {
		t.Fatalf("PTIME %v != enumeration %v", fast, slow)
	}
	// But q2(x) :- F(x,y) with y != c' is certain for a (b ≠ c' always).
	u2 := mustUCQ(t, "q(x) :- F(x,y), y != 'zz'.")
	fast2, err := BoxUCQIneqPTime(s, u2, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if !fast2.Has(query.Tuple{instance.Const("a")}) {
		t.Fatalf("a is certain for q2: %v", fast2)
	}
}

func TestSemanticsString(t *testing.T) {
	if CertainCap.String() != "certain⊓" || MaybeCup.String() != "maybe⊔" {
		t.Fatal("Semantics labels")
	}
}
