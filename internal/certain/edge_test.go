package certain

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
)

func TestRepTooManyNulls(t *testing.T) {
	s := mustSetting(t, example21)
	big := instance.New()
	for i := int64(0); i < 20; i++ {
		big.Add(instance.NewAtom("E", instance.Const("a"), instance.Null(i)))
	}
	_, err := Rep(s, big, mustUCQ(t, "q() :- E(x,y)."), Options{MaxNulls: 8})
	if !errors.Is(err, ErrTooManyNulls) {
		t.Fatalf("want ErrTooManyNulls, got %v", err)
	}
	if _, err := Box(s, mustUCQ(t, "q() :- E(x,y)."), big, Options{MaxNulls: 8}); !errors.Is(err, ErrTooManyNulls) {
		t.Fatalf("Box must propagate: %v", err)
	}
}

func TestForEachRepEarlyStop(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,_0). E(a,_1).`)
	n := 0
	err := ForEachRep(s, tgt, mustUCQ(t, "q() :- E(x,y)."), Options{}, func(*instance.Instance) bool {
		n++
		return n < 3
	})
	if err != nil || n != 3 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestRepCanonicalFreshSymmetry(t *testing.T) {
	// Two nulls with no constants: canonical valuations are
	// (c,c), (c,fresh0), (fresh0,c)…, and fresh pairs only in the canonical
	// order — (fresh0, fresh1) but never (fresh1, fresh0).
	s := mustSetting(t, `
source S/2.
target E/2.
st:
  S(x,y) -> E(x,y).
`)
	tgt := mustInstance(t, `E(_0,_1).`)
	reps, err := Rep(s, tgt, mustUCQ(t, "q() :- E(x,y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Base is empty (no constants anywhere): valuations are the fresh
	// patterns (f0,f0) and (f0,f1) only.
	if len(reps) != 2 {
		t.Fatalf("canonical fresh valuations = %d, want 2: %v", len(reps), reps)
	}
}

func TestAnswersErrorOnNoSolution(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	u := mustUCQ(t, "q(x) :- F(x,y).")
	for _, sem := range []Semantics{CertainCap, CertainCup, MaybeCap, MaybeCup} {
		if _, err := Answers(s, u, src, sem, Options{}); err == nil {
			t.Errorf("%v: expected error when no solution exists", sem)
		}
	}
	if _, err := CertainUCQ(s, u, src, Options{}); err == nil {
		t.Error("CertainUCQ must fail when no solution exists")
	}
}

func TestCertainUCQRejectsInequalities(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	u := mustUCQ(t, "q(x) :- E(x,y), x != y.")
	if _, err := CertainUCQ(s, u, src, Options{}); err == nil ||
		!strings.Contains(err.Error(), "inequalit") {
		t.Fatalf("CertainUCQ must reject inequalities: %v", err)
	}
}

func TestDiamondContainsFreshWitnessedTuples(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,_0).`)
	u := mustUCQ(t, "q(y) :- E(x,y).")
	dia, err := Diamond(s, u, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Maybe answers include the null valued as a (the only instance
	// constant) and as a fresh constant.
	if !dia.Has(query.Tuple{instance.Const("a")}) {
		t.Fatalf("maybe answers must include a: %v", dia)
	}
	if dia.Len() < 2 {
		t.Fatalf("maybe answers must include a fresh valuation: %v", dia)
	}
}

func TestByDefinitionNoSolutions(t *testing.T) {
	s := mustSetting(t, `
source N/2.
target F/2.
st:
  N(x,y) -> F(x,y).
target-deps:
  F(x,y) & F(x,z) -> y = z.
`)
	src := mustInstance(t, `N(a,b). N(a,c).`)
	if _, err := ByDefinition(s, mustUCQ(t, "q(x) :- F(x,y)."), src, CertainCap, Options{}); err == nil {
		t.Fatal("ByDefinition must fail when there are no CWA-solutions")
	}
}

func TestBoxBooleanEarlyExit(t *testing.T) {
	// A Boolean query false in the generic world: Box must report empty.
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,_0).`)
	u := mustUCQ(t, "q() :- F(x,y).")
	box, err := Box(s, u, tgt, Options{})
	if err != nil || box.Len() != 0 {
		t.Fatalf("Box = %v, %v", box, err)
	}
}

func TestSemanticsChainOnFOQuery(t *testing.T) {
	// The chain of Corollary 7.2 holds for an FO query too (via the
	// copying setting, where everything is null-free).
	s := mustSetting(t, `
source E/2, P/1.
target Ep/2, Pp/1.
st:
  cE: E(x,y) -> Ep(x,y).
  cP: P(x) -> Pp(x).
`)
	src := mustInstance(t, `E(a,b). P(a).`)
	q, err := parseFO(`(x) . Pp(x) & exists y (Ep(x,y))`)
	if err != nil {
		t.Fatal(err)
	}
	var prev *query.TupleSet
	for _, sem := range []Semantics{CertainCap, CertainCup, MaybeCap, MaybeCup} {
		got, err := Answers(s, q, src, sem, Options{Chase: chase.Options{}})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if prev != nil && !prev.SubsetOf(got) {
			t.Fatalf("chain broken at %v", sem)
		}
		prev = got
	}
}

func parseFO(text string) (query.FOQuery, error) {
	return parser.ParseFOQuery(text)
}

// genwlEgdOnlySource builds a small random source for the egd-only setting
// without importing genwl (avoiding an import cycle in tests is not a
// concern here, but keeping the fixture local documents its shape).
func genwlEgdOnlySource(n int, seed int64) *instance.Instance {
	src := instance.New()
	name := func(p string, i int64) instance.Value {
		return instance.Const(p + string(rune('0'+i%8)))
	}
	for i := int64(0); i < int64(n); i++ {
		src.Add(instance.NewAtom("N", name("k", i+seed), name("v", i*3+seed)))
		if i%2 == 0 {
			src.Add(instance.NewAtom("W", name("k", i+seed), name("w", i+seed)))
		}
	}
	return src
}
