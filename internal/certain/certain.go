// Package certain implements the query-answering semantics of Section 7:
// the sets Rep_D(T) of possible worlds of a CWA-solution, the certain (□)
// and maybe (◇) answers over one solution, and the four semantics
//
//	certain⊓(Q,S) = ∩_T □Q(T)    certain⊔(Q,S) = ∪_T □Q(T)
//	maybe⊓(Q,S)  = ∩_T ◇Q(T)    maybe⊔(Q,S)  = ∪_T ◇Q(T)
//
// with T ranging over the CWA-solutions for S. Each semantics is available
// both by definition (enumerating CWA-solutions — exponential, used for
// cross-checks) and through the Theorem 7.1 characterisations via the core
// and the canonical solution. Lemma 7.7's polynomial fast path for unions
// of conjunctive queries and the Fagin-et-al.-style fixpoint algorithm for
// UCQs with at most one inequality per disjunct (Table 1, egd-only row) are
// implemented as well.
package certain

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Options configures certain-answer computation.
type Options struct {
	// Chase bounds the chases used to build solutions. Its Ctx, when set,
	// also cancels representative enumeration (ForEachRep/Box/Diamond).
	Chase chase.Options
	// Enum bounds CWA-solution enumeration for the by-definition semantics.
	Enum cwa.EnumOptions
	// MaxNulls bounds the nulls of an instance whose valuations are
	// enumerated (the enumeration is |C|^nulls); default 12.
	MaxNulls int
	// Workers is the number of goroutines that fan out the top-level
	// null-valuation branches of ForEachRep. 0 means runtime.GOMAXPROCS;
	// 1 forces the sequential path. Results are worker-count-invariant:
	// the same representatives are visited (only the order varies), so
	// Box/Diamond answer sets are identical for 1 and N workers.
	Workers int
}

func (o Options) maxNulls() int {
	if o.MaxNulls > 0 {
		return o.MaxNulls
	}
	return 12
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ErrTooManyNulls reports that valuation enumeration was refused because the
// instance has more nulls than Options.MaxNulls.
var ErrTooManyNulls = errors.New("certain: too many nulls for valuation enumeration")

// freshConst returns the i-th reserved fresh constant. The pool is shared
// across all instances so answer sets from different solutions compare
// consistently.
func freshConst(i int) instance.Value {
	return instance.Const(fmt.Sprintf("~%d", i))
}

// valuationBase is the set of named constants a generic valuation may use:
// the constants of the instance, of the query, and of the target
// dependencies. Fresh constants are handled separately (canonically) by Rep.
func valuationBase(s *dependency.Setting, t *instance.Instance, q query.Evaluable) []instance.Value {
	seen := make(map[instance.Value]bool)
	var out []instance.Value
	add := func(v instance.Value) {
		if !v.IsNull() && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range t.Consts() {
		add(v)
	}
	for _, v := range query.Constants(q) {
		add(v)
	}
	for _, d := range s.TGDs {
		for _, a := range append(append([]query.Atom{}, d.BodyAtoms...), d.Head...) {
			for _, tm := range a.Terms {
				if !tm.IsVar() {
					add(tm.Val)
				}
			}
		}
	}
	for _, d := range s.EGDs {
		for _, a := range d.Body {
			for _, tm := range a.Terms {
				if !tm.IsVar() {
					add(tm.Val)
				}
			}
		}
	}
	return out
}

// SatisfiesTargetDeps reports whether the instance satisfies Σt — the
// membership test of Rep_D(T) (Section 7.1).
func SatisfiesTargetDeps(s *dependency.Setting, ins *instance.Instance) bool {
	return satisfiesTargetDeps(s, ins)
}

// satisfiesTargetDeps reports whether the (null-free) instance satisfies Σt.
func satisfiesTargetDeps(s *dependency.Setting, ins *instance.Instance) bool {
	for _, d := range s.TGDs {
		if !chase.SatisfiesTGD(s, d, ins) {
			return false
		}
	}
	for _, d := range s.EGDs {
		if !chase.SatisfiesEGD(d, ins) {
			return false
		}
	}
	return true
}

// Rep enumerates Rep_D(T) up to renaming of unmentioned constants: the
// instances v(T) for valuations v of T's nulls into the named constant base
// plus canonically-introduced fresh constants, keeping those that satisfy Σt
// (Section 7.1). Fresh constants are generic — neither the query nor the
// dependencies mention them — so enumerating them canonically (the i-th
// fresh constant may appear only after the (i−1)-st) is a pure symmetry
// reduction: every valuation is equivalent to a canonical one.
func Rep(s *dependency.Setting, t *instance.Instance, q query.Evaluable, opt Options) ([]*instance.Instance, error) {
	var out []*instance.Instance
	err := ForEachRep(s, t, q, opt, func(img *instance.Instance) bool {
		out = append(out, img)
		return true
	})
	return out, err
}

// ForEachRep streams Rep_D(T) (see Rep) to f without materialising the
// whole set; f returning false stops the enumeration. f is never invoked
// concurrently with itself (calls are serialized even on the parallel
// path), but with Workers != 1 the visiting order is unspecified. The
// visited set is worker-count-invariant: an early stop aborts promptly in
// every branch, and a run to completion delivers exactly the same
// representatives regardless of Workers. The enumeration honours
// opt.Chase.Ctx and returns an error wrapping chase.ErrCanceled when the
// context expires mid-run.
func ForEachRep(s *dependency.Setting, t *instance.Instance, q query.Evaluable, opt Options, f func(*instance.Instance) bool) error {
	var mu sync.Mutex
	stopped := false
	return forEachRep(s, t, q, opt, func(img *instance.Instance) bool {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			// An in-flight worker reached its leaf after another branch
			// stopped the enumeration; the callback must not see it.
			return false
		}
		if !f(img) {
			stopped = true
		}
		return !stopped
	})
}

// forEachRep is ForEachRep without the serialization wrapper: emit may be
// called concurrently from several workers (each call on a distinct
// representative). Box and Diamond use it directly so that answer-set
// evaluation runs inside the workers, keeping only the merge serialized.
func forEachRep(s *dependency.Setting, t *instance.Instance, q query.Evaluable, opt Options, emit func(*instance.Instance) bool) error {
	nulls := t.Nulls()
	if len(nulls) > opt.maxNulls() {
		return fmt.Errorf("%w: %d nulls", ErrTooManyNulls, len(nulls))
	}
	w := &repWalker{
		s:     s,
		t:     t,
		base:  valuationBase(s, t, q),
		nulls: nulls,
		ctx:   opt.Chase.Ctx,
		emit:  emit,
	}
	if workers := opt.workers(); workers > 1 && len(nulls) > 0 {
		w.parallel(workers)
	} else {
		w.walk(make(map[instance.Value]instance.Value, len(nulls)), 0, 0)
	}
	if w.canceled.Load() {
		return chase.ContextErr(w.ctx)
	}
	return nil
}

// repWalker enumerates the canonical valuations of t's nulls. stop is the
// short-circuit broadcast: set when a callback returns false (Box's empty
// intersection, Diamond's early hit) or the context expires, it aborts
// every branch — sequential recursion and parallel workers alike.
type repWalker struct {
	s        *dependency.Setting
	t        *instance.Instance
	base     []instance.Value
	nulls    []instance.Value
	ctx      context.Context
	emit     func(*instance.Instance) bool
	stop     atomic.Bool
	canceled atomic.Bool
}

func (w *repWalker) stopped() bool { return w.stop.Load() }

// checkCtx polls the context (at leaves only — Err takes a lock) and
// converts expiry into a stop broadcast.
func (w *repWalker) checkCtx() bool {
	if w.ctx != nil && w.ctx.Err() != nil {
		w.canceled.Store(true)
		w.stop.Store(true)
		return true
	}
	return false
}

// walk enumerates valuations of w.nulls[i:] given the partial valuation v
// using freshUsed canonical fresh constants. Both the base-constant loop
// and the fresh-constant loop re-check the stop flag so an early stop
// cannot fan out over the remaining branches (the base loop historically
// lacked this guard, wasting exponential work after a stop).
func (w *repWalker) walk(v map[instance.Value]instance.Value, i, freshUsed int) {
	if w.stopped() {
		return
	}
	if i == len(w.nulls) {
		if w.checkCtx() {
			return
		}
		metrics.RepCandidates.Inc()
		img := w.t.Map(v)
		if satisfiesTargetDeps(w.s, img) {
			metrics.RepVisited.Inc()
			if !w.emit(img) {
				w.stop.Store(true)
			}
		}
		return
	}
	for _, c := range w.base {
		if w.stopped() {
			return
		}
		v[w.nulls[i]] = c
		w.walk(v, i+1, freshUsed)
	}
	for j := 0; j <= freshUsed && !w.stopped(); j++ {
		v[w.nulls[i]] = freshConst(j)
		next := freshUsed
		if j == freshUsed {
			next++
		}
		w.walk(v, i+1, next)
	}
	delete(v, w.nulls[i])
}

// parallel fans the top-level branches — the valuations of nulls[0] — over
// a bounded worker pool. Each worker owns a private valuation map and runs
// the sequential recursion from level 1; the stop flag broadcasts
// short-circuits across workers.
func (w *repWalker) parallel(workers int) {
	type branch struct {
		val       instance.Value
		freshUsed int
	}
	branches := make([]branch, 0, len(w.base)+1)
	for _, c := range w.base {
		branches = append(branches, branch{c, 0})
	}
	// nulls[0] can only take the first fresh constant (canonical order).
	branches = append(branches, branch{freshConst(0), 1})
	if workers > len(branches) {
		workers = len(branches)
	}
	jobs := make(chan branch)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		metrics.GoroutinesSpawned.Inc()
		go func() {
			defer wg.Done()
			v := make(map[instance.Value]instance.Value, len(w.nulls))
			for b := range jobs {
				if w.stopped() {
					continue // drain remaining jobs after a stop
				}
				v[w.nulls[0]] = b.val
				w.walk(v, 1, b.freshUsed)
				delete(v, w.nulls[0])
			}
		}()
	}
	for _, b := range branches {
		jobs <- b
	}
	close(jobs)
	wg.Wait()
}

// Box computes □Q(T) = ∩_{R ∈ Rep_D(T)} Q(R), the certain answers of Q on
// the single CWA-solution T. Representative enumeration and answer-set
// evaluation are fanned across opt.Workers goroutines; the intersection
// merge is serialized and order-insensitive, and an empty intersection
// short-circuits every branch.
func Box(s *dependency.Setting, q query.Evaluable, t *instance.Instance, opt Options) (*query.TupleSet, error) {
	var mu sync.Mutex
	var out *query.TupleSet
	err := forEachRep(s, t, q, opt, func(r *instance.Instance) bool {
		ans := q.AnswerSet(r) // evaluated inside the worker
		mu.Lock()
		defer mu.Unlock()
		if out == nil {
			out = ans
		} else {
			out = out.Intersect(ans)
		}
		return out.Len() > 0 // an empty intersection can only stay empty
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		// Rep empty: the intersection over nothing is all tuples; a
		// CWA-solution always has a nonempty Rep (the injective valuation),
		// so report this as an error rather than inventing a universal set.
		return nil, fmt.Errorf("certain: Rep_D(T) is empty")
	}
	return out, nil
}

// Diamond computes ◇Q(T) = ∪_{R ∈ Rep_D(T)} Q(R), the maybe answers of Q
// on the single CWA-solution T. Like Box, evaluation runs inside the
// workers with a serialized, order-insensitive union merge.
func Diamond(s *dependency.Setting, q query.Evaluable, t *instance.Instance, opt Options) (*query.TupleSet, error) {
	var mu sync.Mutex
	out := query.NewTupleSet()
	err := forEachRep(s, t, q, opt, func(r *instance.Instance) bool {
		ans := q.AnswerSet(r)
		mu.Lock()
		defer mu.Unlock()
		out.UnionWith(ans)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Semantics selects one of the four query-answering semantics.
type Semantics int

const (
	// CertainCap is certain⊓: tuples certain in every CWA-solution.
	CertainCap Semantics = iota
	// CertainCup is certain⊔ (potential certain answers).
	CertainCup
	// MaybeCap is maybe⊓ (persistent maybe answers).
	MaybeCap
	// MaybeCup is maybe⊔ (maybe answers).
	MaybeCup
)

func (sem Semantics) String() string {
	switch sem {
	case CertainCap:
		return "certain⊓"
	case CertainCup:
		return "certain⊔"
	case MaybeCap:
		return "maybe⊓"
	case MaybeCup:
		return "maybe⊔"
	}
	return "?"
}

// ByDefinition computes the chosen semantics directly from its definition,
// enumerating all CWA-solutions. Exponential; intended for cross-checking
// the characterisations on small inputs (experiment E11).
func ByDefinition(s *dependency.Setting, q query.Evaluable, src *instance.Instance, sem Semantics, opt Options) (*query.TupleSet, error) {
	sols, err := cwa.Enumerate(s, src, opt.Enum)
	if err != nil {
		return nil, err
	}
	if len(sols) == 0 {
		return nil, fmt.Errorf("certain: no CWA-solutions for the source instance")
	}
	var out *query.TupleSet
	for _, t := range sols {
		var one *query.TupleSet
		switch sem {
		case CertainCap, CertainCup:
			one, err = Box(s, q, t, opt)
		default:
			one, err = Diamond(s, q, t, opt)
		}
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = one
			continue
		}
		switch sem {
		case CertainCap, MaybeCap:
			out = out.Intersect(one)
		default:
			out.UnionWith(one)
		}
	}
	return out, nil
}

// Answers computes the chosen semantics using the Theorem 7.1
// characterisations where they apply:
//
//   - certain⊔(Q,S) = □Q(Core_D(S)) and maybe⊓(Q,S) = ◇Q(Core_D(S)), always
//     (the core is the minimal CWA-solution and Rep is monotone under
//     homomorphic images);
//   - certain⊓(Q,S) = □Q(CanSol_D(S)) and maybe⊔(Q,S) = ◇Q(CanSol_D(S))
//     when the setting's dependencies fall into Proposition 5.4's classes
//     (egd-only target dependencies, or full tgds with egds), where CanSol
//     is the maximal CWA-solution.
//
// Outside those classes, certain⊓ and maybe⊔ fall back to ByDefinition.
func Answers(s *dependency.Setting, q query.Evaluable, src *instance.Instance, sem Semantics, opt Options) (*query.TupleSet, error) {
	switch sem {
	case CertainCup:
		core, err := cwa.Minimal(s, src, opt.Chase)
		if err != nil {
			return nil, err
		}
		return Box(s, q, core, opt)
	case MaybeCap:
		core, err := cwa.Minimal(s, src, opt.Chase)
		if err != nil {
			return nil, err
		}
		return Diamond(s, q, core, opt)
	case CertainCap, MaybeCup:
		if s.EgdsOnly() || s.FullAndEgds() {
			can, err := cwa.CanSol(s, src, opt.Chase)
			if err != nil {
				return nil, err
			}
			if sem == CertainCap {
				return Box(s, q, can, opt)
			}
			return Diamond(s, q, can, opt)
		}
		return ByDefinition(s, q, src, sem, opt)
	}
	return nil, fmt.Errorf("certain: unknown semantics %v", sem)
}

// CertainUCQ computes certain⊓(Q,S) = certain⊔(Q,S) for a union of
// conjunctive queries without inequalities via Lemma 7.7: evaluate Q
// naively on a CWA-solution and keep the null-free tuples, giving the
// polynomial data complexity of Theorem 7.6.
//
// It evaluates on the standard-chase universal solution rather than its
// core: the core is hom-equivalent to it, UCQs are preserved by
// homomorphisms, and constants are fixed, so the null-free answer sets
// coincide — skipping the core computation entirely.
func CertainUCQ(s *dependency.Setting, u query.UCQ, src *instance.Instance, opt Options) (*query.TupleSet, error) {
	if !u.Pure() {
		return nil, fmt.Errorf("certain: CertainUCQ requires a UCQ without inequalities")
	}
	t, err := chase.UniversalSolution(s, src, opt.Chase)
	if err != nil {
		return nil, err
	}
	return query.NullFree(u.Answers(t)), nil
}
