package certain

import (
	"fmt"

	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/query"
)

// cwaCanSol wraps cwa.CanSol with this package's options.
func cwaCanSol(s *dependency.Setting, src *instance.Instance, opt Options) (*instance.Instance, error) {
	return cwa.CanSol(s, src, opt.Chase)
}

// BoxUCQIneqPTime computes □Q(T) for a union of conjunctive queries with at
// most one inequality per disjunct, for settings whose target dependencies
// are egds only (or empty). This is the polynomial algorithm in the style of
// Fagin, Kolaitis, Miller & Popa that the paper invokes for the PTIME
// entries of Table 1's second column: unlike Box, which enumerates
// exponentially many valuations, it runs a forced-equality fixpoint per
// candidate answer.
//
// For a candidate tuple ā, any valuation v with ā ∉ Q(v(T)) and v(T) ⊨ Σt is
// forced to (a) equate the two sides of every egd violation and (b) falsify
// every inequality-disjunct match producing ā by equating the inequality's
// sides; matches persist under further collapsing, so the forced equalities
// form a least fixpoint. ā is certain iff the fixpoint forces a
// contradiction (two distinct constants) or a pure disjunct match of ā
// survives, which no valuation can kill.
func BoxUCQIneqPTime(s *dependency.Setting, u query.UCQ, t *instance.Instance) (*query.TupleSet, error) {
	if !s.EgdsOnly() {
		return nil, fmt.Errorf("certain: BoxUCQIneqPTime requires egd-only target dependencies")
	}
	if u.MaxInequalitiesPerDisjunct() > 1 {
		return nil, fmt.Errorf("certain: BoxUCQIneqPTime requires at most one inequality per disjunct")
	}
	// Candidate answers: the null-free tuples of the naive evaluation
	// (which is evaluation under the valuation sending nulls to pairwise
	// distinct fresh constants — any certain tuple must appear there).
	candidates := query.NullFree(u.Answers(t))
	out := query.NewTupleSet()
	for _, cand := range candidates.Tuples() {
		certain, err := certainByFixpoint(s, u, t, cand)
		if err != nil {
			return nil, err
		}
		if certain {
			out.Add(cand)
		}
	}
	return out, nil
}

// AnswersUCQIneq computes certain⊓(Q,S) for a UCQ with at most one
// inequality per disjunct along the Table 1 column-2 classification:
//
//   - settings whose target dependencies are egds only: the PTIME fixpoint
//     on CanSol (the maximal CWA-solution, so certain⊓ = □Q(CanSol));
//   - full tgds + egds: chase results are null-free, Rep(T) = {T}, so the
//     naive evaluation is exact;
//   - anything else: the problem is co-NP-hard (Theorem 7.5); fall back to
//     the generic valuation enumeration via Answers.
func AnswersUCQIneq(s *dependency.Setting, u query.UCQ, src *instance.Instance, opt Options) (*query.TupleSet, error) {
	if u.MaxInequalitiesPerDisjunct() > 1 {
		return nil, fmt.Errorf("certain: AnswersUCQIneq requires at most one inequality per disjunct")
	}
	switch {
	case s.EgdsOnly():
		can, err := cwaCanSol(s, src, opt)
		if err != nil {
			return nil, err
		}
		return BoxUCQIneqPTime(s, u, can)
	case s.FullAndEgds():
		can, err := cwaCanSol(s, src, opt)
		if err != nil {
			return nil, err
		}
		if can.HasNulls() {
			return nil, fmt.Errorf("certain: full-tgd chase result unexpectedly has nulls")
		}
		return query.NullFree(u.Answers(can)), nil
	default:
		return Answers(s, u, src, CertainCap, opt)
	}
}

// certainByFixpoint runs the forced-equality fixpoint for one candidate.
func certainByFixpoint(s *dependency.Setting, u query.UCQ, t *instance.Instance, cand query.Tuple) (bool, error) {
	uf := newUnionFind(t.Dom())
	for {
		quotient := t.Map(uf.mapping())
		// (a) Egd obligations: v(T) must satisfy Σt.
		forced, contradiction := egdObligation(s, quotient, uf)
		if contradiction {
			return true, nil
		}
		if forced {
			continue
		}
		// (b) Disjunct matches producing the candidate.
		progress := false
		for _, d := range u.Disjuncts {
			obligation, killed, err := disjunctObligation(d, quotient, uf, cand)
			if err != nil {
				return false, err
			}
			if obligation == obligationCertain {
				return true, nil
			}
			if killed {
				progress = true
				break
			}
		}
		if !progress {
			return false, nil
		}
	}
}

type obligationKind int

const (
	obligationNone obligationKind = iota
	obligationCertain
)

// egdObligation looks for an egd body match in the quotient with unequal
// sides and equates them. contradiction is true when two distinct constants
// were forced equal.
func egdObligation(s *dependency.Setting, quotient *instance.Instance, uf *unionFind) (forced, contradiction bool) {
	for _, d := range s.EGDs {
		query.MatchAtoms(quotient, d.Body, query.Binding{}, func(env query.Binding) bool {
			l, r := env[d.L], env[d.R]
			if l != r {
				forced = true
				contradiction = !uf.union(l, r)
				return false
			}
			return true
		})
		if forced {
			return forced, contradiction
		}
	}
	return false, false
}

// disjunctObligation looks for a match of the disjunct in the quotient whose
// head equals the candidate. A pure match (no inequality, or an inequality
// already between distinct constants) makes the candidate certain; an
// inequality match is killed by equating its sides. killed reports that a
// forced equality was applied.
func disjunctObligation(d query.CQ, quotient *instance.Instance, uf *unionFind, cand query.Tuple) (obligationKind, bool, error) {
	result := obligationNone
	killed := false
	var err error
	query.MatchAtoms(quotient, d.Atoms, query.Binding{}, func(env query.Binding) bool {
		// Head must produce the candidate (candidate constants are their own
		// representatives; two constants never share a class).
		for i, v := range d.Head {
			if env[v] != uf.find(cand[i]) {
				return true
			}
		}
		if len(d.Diseqs) == 0 {
			result = obligationCertain
			return false
		}
		dq := d.Diseqs[0]
		l, lok := resolveTerm(dq.L, env)
		r, rok := resolveTerm(dq.R, env)
		if !lok || !rok {
			err = fmt.Errorf("certain: inequality variable not bound by body in %v", d)
			return false
		}
		if l == r {
			return true // inequality already false: match dead
		}
		if l.IsConst() && r.IsConst() {
			// Two distinct constants: the inequality holds in every
			// valuation; the match cannot be killed.
			result = obligationCertain
			return false
		}
		if !uf.union(l, r) {
			result = obligationCertain // contradiction while killing
			return false
		}
		killed = true
		return false
	})
	return result, killed, err
}

func resolveTerm(t query.Term, env query.Binding) (instance.Value, bool) {
	if !t.IsVar() {
		return t.Val, true
	}
	v, ok := env[t.Var]
	return v, ok
}

// unionFind maintains forced-equality classes over domain values. Constants
// always win representative elections; merging two distinct constants fails.
type unionFind struct {
	parent map[instance.Value]instance.Value
}

func newUnionFind(dom []instance.Value) *unionFind {
	uf := &unionFind{parent: make(map[instance.Value]instance.Value, len(dom))}
	for _, v := range dom {
		uf.parent[v] = v
	}
	return uf
}

func (uf *unionFind) find(v instance.Value) instance.Value {
	p, ok := uf.parent[v]
	if !ok {
		uf.parent[v] = v
		return v
	}
	if p == v {
		return v
	}
	r := uf.find(p)
	uf.parent[v] = r
	return r
}

// union merges the classes of a and b; it reports false when both classes
// are rooted at distinct constants (a contradiction).
func (uf *unionFind) union(a, b instance.Value) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return true
	}
	if ra.IsConst() && rb.IsConst() {
		return false
	}
	// The constant (or the smaller null) becomes the representative.
	if rb.IsConst() || (!ra.IsConst() && instance.Less(rb, ra)) {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	return true
}

// mapping returns the representative map for quotienting an instance.
func (uf *unionFind) mapping() map[instance.Value]instance.Value {
	out := make(map[instance.Value]instance.Value, len(uf.parent))
	for v := range uf.parent {
		out[v] = uf.find(v)
	}
	return out
}
