package certain

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/instance"
	"repro/internal/metrics"
)

// TestForEachRepEarlyStopNoExtraWork pins the fix for the missing stop guard
// in the base-constant loop of the valuation walk: once the callback returns
// false, no further representative may be materialised, recursed into, or
// delivered. Before the fix the base-constant loop kept fanning out after a
// stop, wasting exponential work.
func TestForEachRepEarlyStopNoExtraWork(t *testing.T) {
	s := mustSetting(t, example21)
	// Four nulls over base {a} plus canonical fresh constants: dozens of
	// candidate valuations if the walk keeps going after the stop.
	tgt := mustInstance(t, `E(a,_0). E(a,_1). E(a,_2). E(a,_3).`)
	q := mustUCQ(t, "q() :- E(x,y).")
	for _, workers := range []int{1, 4} {
		before := metrics.Read()
		calls := 0
		err := ForEachRep(s, tgt, q, Options{Workers: workers}, func(*instance.Instance) bool {
			calls++
			return false
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != 1 {
			t.Fatalf("workers=%d: callback ran %d times after an immediate stop, want 1",
				workers, calls)
		}
		if workers == 1 {
			// Sequential walk: the stop must also cut candidate
			// materialisation immediately, not just callback delivery.
			if d := metrics.Read().Diff(before); d["rep_candidates"] != 1 {
				t.Fatalf("walk materialised %d candidates after an immediate stop, want 1",
					d["rep_candidates"])
			}
		}
	}
}

// TestBoxDiamondWorkerInvariance: the answer sets must be identical for the
// sequential and the parallel path.
func TestBoxDiamondWorkerInvariance(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,_0). E(_1,b). F(a,_2). G(_2,_3).`)
	for _, qs := range []string{
		"q(x) :- E(x,y).",
		"q(x,y) :- E(x,y), F(x,z).",
		"q() :- G(x,y).",
	} {
		q := mustUCQ(t, qs)
		boxSeq, err := Box(s, q, tgt, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		diaSeq, err := Diamond(s, q, tgt, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			boxPar, err := Box(s, q, tgt, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !boxSeq.Equal(boxPar) {
				t.Errorf("%s: Box differs: 1 worker %v, %d workers %v", qs, boxSeq, workers, boxPar)
			}
			diaPar, err := Diamond(s, q, tgt, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !diaSeq.Equal(diaPar) {
				t.Errorf("%s: Diamond differs: 1 worker %v, %d workers %v", qs, diaSeq, workers, diaPar)
			}
		}
	}
}

// TestAnswersWorkerInvariance: all four semantics agree between the
// sequential and the parallel evaluation paths, end to end from the source.
func TestAnswersWorkerInvariance(t *testing.T) {
	s := mustSetting(t, example21)
	src := mustInstance(t, smallSource)
	q := mustUCQ(t, "q(x) :- E(x,y).")
	for _, sem := range []Semantics{CertainCap, CertainCup, MaybeCap, MaybeCup} {
		seq, err := Answers(s, q, src, sem, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		par, err := Answers(s, q, src, sem, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if !seq.Equal(par) {
			t.Errorf("%v differs: 1 worker %v, 4 workers %v", sem, seq, par)
		}
	}
}

// TestForEachRepCanceled: a done context aborts the enumeration with
// chase.ErrCanceled on both the sequential and the parallel path.
func TestForEachRepCanceled(t *testing.T) {
	s := mustSetting(t, example21)
	tgt := mustInstance(t, `E(a,_0). E(a,_1).`)
	q := mustUCQ(t, "q() :- E(x,y).")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		opt := Options{Workers: workers, Chase: chase.Options{Ctx: ctx}}
		err := ForEachRep(s, tgt, q, opt, func(*instance.Instance) bool { return true })
		if !errors.Is(err, chase.ErrCanceled) {
			t.Fatalf("workers=%d: want ErrCanceled, got %v", workers, err)
		}
		if _, err := Box(s, q, tgt, opt); !errors.Is(err, chase.ErrCanceled) {
			t.Fatalf("workers=%d: Box must propagate cancellation, got %v", workers, err)
		}
	}
}
