package query

import (
	"strings"

	"repro/internal/instance"
)

// Diseq is an inequality t1 != t2 in a conjunctive query body.
type Diseq struct{ L, R Term }

func (d Diseq) String() string { return d.L.String() + " != " + d.R.String() }

// CQ is a conjunctive query, optionally with inequalities:
//
//	Q(x̄) :- A1, …, Am, s1 != t1, …, sk != tk
//
// with the remaining body variables existentially quantified. The paper's
// Table 1 distinguishes CQs with no inequalities from CQs with one
// inequality per disjunct; Diseqs carries them.
type CQ struct {
	Head   []string
	Atoms  []Atom
	Diseqs []Diseq
}

// HasInequalities reports whether the CQ uses any inequality.
func (q CQ) HasInequalities() bool { return len(q.Diseqs) > 0 }

// Boolean reports whether the query has an empty head.
func (q CQ) Boolean() bool { return len(q.Head) == 0 }

func (q CQ) String() string {
	parts := make([]string, 0, len(q.Atoms)+len(q.Diseqs))
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, d := range q.Diseqs {
		parts = append(parts, d.String())
	}
	return "(" + strings.Join(q.Head, ",") + ") :- " + strings.Join(parts, ", ")
}

// Answers evaluates the CQ over the instance (naive-table style: nulls are
// treated as ordinary values) and returns the set of head tuples.
func (q CQ) Answers(ins *instance.Instance) *TupleSet {
	out := NewTupleSet()
	MatchAtoms(ins, q.Atoms, Binding{}, func(env Binding) bool {
		for _, d := range q.Diseqs {
			l, ok := d.L.resolve(env)
			if !ok {
				panic("query: unbound variable in inequality " + d.String())
			}
			r, ok := d.R.resolve(env)
			if !ok {
				panic("query: unbound variable in inequality " + d.String())
			}
			if l == r {
				return true // this match fails the inequality; keep searching
			}
		}
		t := make(Tuple, len(q.Head))
		for i, v := range q.Head {
			val, ok := env[v]
			if !ok {
				panic("query: head variable " + v + " not bound by body")
			}
			t[i] = val
		}
		out.Add(t)
		return true
	})
	return out
}

// Holds evaluates a Boolean CQ.
func (q CQ) Holds(ins *instance.Instance) bool {
	if !q.Boolean() {
		panic("query: Holds on non-Boolean CQ")
	}
	return q.Answers(ins).Len() > 0
}

// Formula converts the CQ to an equivalent first-order query.
func (q CQ) Formula() FOQuery {
	head := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	var exVars []string
	seen := make(map[string]bool)
	conjs := make([]Formula, 0, len(q.Atoms)+len(q.Diseqs))
	for _, a := range q.Atoms {
		conjs = append(conjs, a)
		for _, v := range a.Vars() {
			if !head[v] && !seen[v] {
				seen[v] = true
				exVars = append(exVars, v)
			}
		}
	}
	for _, d := range q.Diseqs {
		conjs = append(conjs, Not{F: Eq{L: d.L, R: d.R}})
	}
	body := Conj(conjs...)
	if len(exVars) > 0 {
		body = Exists{Vars: exVars, F: body}
	}
	return FOQuery{Vars: append([]string(nil), q.Head...), F: body}
}

// UCQ is a union (finite disjunction) of conjunctive queries sharing a head
// arity. Datalog-style potentially infinite unions are approximated by their
// finite materializations in this library.
type UCQ struct {
	Disjuncts []CQ
}

// NewUCQ validates that all disjuncts share the head arity.
func NewUCQ(disjuncts ...CQ) UCQ {
	if len(disjuncts) == 0 {
		panic("query: empty UCQ")
	}
	ar := len(disjuncts[0].Head)
	for _, d := range disjuncts {
		if len(d.Head) != ar {
			panic("query: UCQ disjuncts must share head arity")
		}
	}
	return UCQ{Disjuncts: disjuncts}
}

// Pure reports whether no disjunct uses inequalities (the class "union of
// CQ" of Table 1, as opposed to "union of CQ with 1 inequality per
// disjunct").
func (u UCQ) Pure() bool {
	for _, d := range u.Disjuncts {
		if d.HasInequalities() {
			return false
		}
	}
	return true
}

// MaxInequalitiesPerDisjunct returns the largest number of inequalities in
// any disjunct.
func (u UCQ) MaxInequalitiesPerDisjunct() int {
	max := 0
	for _, d := range u.Disjuncts {
		if len(d.Diseqs) > max {
			max = len(d.Diseqs)
		}
	}
	return max
}

// Answers evaluates the UCQ naively over the instance.
func (u UCQ) Answers(ins *instance.Instance) *TupleSet {
	out := NewTupleSet()
	for _, d := range u.Disjuncts {
		out.UnionWith(d.Answers(ins))
	}
	return out
}

func (u UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "  ∪  ")
}

// Evaluable is the common interface of the query classes: first-order
// queries, conjunctive queries (with or without inequalities) and unions of
// conjunctive queries.
type Evaluable interface {
	// AnswerSet evaluates the query naively over the instance (nulls are
	// treated as ordinary values).
	AnswerSet(ins *instance.Instance) *TupleSet
	// Arity is the number of answer variables (0 for Boolean queries).
	Arity() int
	String() string
}

// AnswerSet implements Evaluable.
func (q CQ) AnswerSet(ins *instance.Instance) *TupleSet { return q.Answers(ins) }

// Arity implements Evaluable.
func (q CQ) Arity() int { return len(q.Head) }

// AnswerSet implements Evaluable.
func (u UCQ) AnswerSet(ins *instance.Instance) *TupleSet { return u.Answers(ins) }

// Arity implements Evaluable.
func (u UCQ) Arity() int { return len(u.Disjuncts[0].Head) }

// AnswerSet implements Evaluable.
func (q FOQuery) AnswerSet(ins *instance.Instance) *TupleSet {
	return NewTupleSet(q.Answers(ins)...)
}

// Arity implements Evaluable.
func (q FOQuery) Arity() int { return len(q.Vars) }

// Constants returns the constants mentioned by the query (needed to build a
// generic valuation domain).
func Constants(q Evaluable) []instance.Value {
	switch g := q.(type) {
	case CQ:
		return cqConstants(g)
	case UCQ:
		var out []instance.Value
		for _, d := range g.Disjuncts {
			out = append(out, cqConstants(d)...)
		}
		return out
	case FOQuery:
		return formulaConstants(g.F)
	default:
		return nil
	}
}

func cqConstants(q CQ) []instance.Value {
	var out []instance.Value
	for _, a := range q.Atoms {
		for _, t := range a.Terms {
			if !t.IsVar() {
				out = append(out, t.Val)
			}
		}
	}
	for _, d := range q.Diseqs {
		for _, t := range []Term{d.L, d.R} {
			if !t.IsVar() {
				out = append(out, t.Val)
			}
		}
	}
	return out
}

// NullFree filters a tuple set down to the tuples without nulls — the ↓
// operation of Lemma 7.7 (written Q(T)↓ in the paper).
func NullFree(s *TupleSet) *TupleSet {
	out := NewTupleSet()
	for _, t := range s.Tuples() {
		if !t.HasNull() {
			out.Add(t)
		}
	}
	return out
}
