package query

import (
	"sort"

	"repro/internal/instance"
)

// Tuple is an answer tuple over the domain.
type Tuple []instance.Value

// Key returns a canonical string key for set operations on tuples.
func (t Tuple) Key() string {
	out := make([]byte, 0, len(t)*12)
	for i, v := range t {
		if i > 0 {
			out = append(out, '|')
		}
		out = append(out, v.String()...)
	}
	return string(out)
}

// HasNull reports whether the tuple mentions a labeled null.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func (t Tuple) String() string {
	out := "("
	for i, v := range t {
		if i > 0 {
			out += ","
		}
		out += v.String()
	}
	return out + ")"
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// TupleSet is a set of tuples keyed canonically, preserving insertion order.
type TupleSet struct {
	byKey map[string]int
	elems []Tuple
}

// NewTupleSet builds a set from the given tuples.
func NewTupleSet(ts ...Tuple) *TupleSet {
	s := &TupleSet{byKey: make(map[string]int)}
	for _, t := range ts {
		s.Add(t)
	}
	return s
}

// Add inserts the tuple, reporting whether it was new.
func (s *TupleSet) Add(t Tuple) bool {
	k := t.Key()
	if _, ok := s.byKey[k]; ok {
		return false
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	s.byKey[k] = len(s.elems)
	s.elems = append(s.elems, cp)
	return true
}

// Has reports membership.
func (s *TupleSet) Has(t Tuple) bool { _, ok := s.byKey[t.Key()]; return ok }

// Len returns the number of tuples.
func (s *TupleSet) Len() int { return len(s.elems) }

// Tuples returns the tuples in insertion order.
func (s *TupleSet) Tuples() []Tuple { return s.elems }

// Intersect returns the tuples present in both sets.
func (s *TupleSet) Intersect(o *TupleSet) *TupleSet {
	out := NewTupleSet()
	for _, t := range s.elems {
		if o.Has(t) {
			out.Add(t)
		}
	}
	return out
}

// UnionWith adds every tuple of o to s.
func (s *TupleSet) UnionWith(o *TupleSet) {
	for _, t := range o.elems {
		s.Add(t)
	}
}

// Equal reports whether the two sets contain the same tuples.
func (s *TupleSet) Equal(o *TupleSet) bool {
	if s.Len() != o.Len() {
		return false
	}
	for _, t := range s.elems {
		if !o.Has(t) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tuple of s is in o.
func (s *TupleSet) SubsetOf(o *TupleSet) bool {
	for _, t := range s.elems {
		if !o.Has(t) {
			return false
		}
	}
	return true
}

// String renders the set as { (a,b), (c,d) } in insertion order.
func (s *TupleSet) String() string {
	out := "{"
	for i, t := range s.elems {
		if i > 0 {
			out += ", "
		}
		out += t.String()
	}
	return out + "}"
}

// MatchAtoms enumerates all extensions of init that make every atom of the
// conjunction true in ins, invoking f for each complete binding. The binding
// passed to f is reused between calls; clone it if you keep it. Enumeration
// stops early when f returns false. MatchAtoms returns false iff it was
// stopped early.
//
// MatchAtoms compiles the conjunction into a Plan (fixed most-bound atom
// order, integer slots) and evaluates it, so the per-step cost is
// allocation-free; callers that evaluate the same body repeatedly should
// Compile once and reuse the Plan. The enumeration order is identical to the
// interpreted reference engine MatchAtomsRef.
func MatchAtoms(ins *instance.Instance, atoms []Atom, init Binding, f func(Binding) bool) bool {
	var preBound []string
	if len(init) > 0 {
		preBound = make([]string, 0, len(init))
		for v := range init {
			preBound = append(preBound, v)
		}
		sort.Strings(preBound)
	}
	return Compile(atoms, preBound).EvalBinding(ins, init, f)
}

// MatchAtomsRef is the interpreted reference engine: it re-plans the atom
// order at every recursion level and keys bindings through a map. It is kept
// as the ground truth for randomized crosschecks against the compiled Plan
// path and follows the same callback contract as MatchAtoms.
func MatchAtomsRef(ins *instance.Instance, atoms []Atom, init Binding, f func(Binding) bool) bool {
	env := init.Clone()
	remaining := make([]Atom, len(atoms))
	copy(remaining, atoms)
	return matchRec(ins, remaining, env, f)
}

func matchRec(ins *instance.Instance, remaining []Atom, env Binding, f func(Binding) bool) bool {
	if len(remaining) == 0 {
		return f(env)
	}
	// Pick the atom with the most bound terms (ties: fewer unbound vars).
	best, bestScore := 0, -1
	for i, a := range remaining {
		score := 0
		for _, t := range a.Terms {
			if !t.IsVar() {
				score += 2
			} else if _, ok := env[t.Var]; ok {
				score += 2
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	a := remaining[best]
	rest := make([]Atom, 0, len(remaining)-1)
	rest = append(rest, remaining[:best]...)
	rest = append(rest, remaining[best+1:]...)

	pattern := make([]instance.Value, len(a.Terms))
	bound := make([]bool, len(a.Terms))
	for i, t := range a.Terms {
		if v, ok := t.resolve(env); ok {
			pattern[i] = v
			bound[i] = true
		}
	}
	cont := true
	ins.MatchTuples(a.Rel, pattern, bound, func(args []instance.Value) bool {
		// Bind unbound variables; verify repeated-variable consistency.
		var newly []string
		ok := true
		for i, t := range a.Terms {
			if bound[i] {
				continue
			}
			if v, alreadyBound := env[t.Var]; alreadyBound {
				if v != args[i] {
					ok = false
					break
				}
				continue
			}
			env[t.Var] = args[i]
			newly = append(newly, t.Var)
		}
		if ok {
			cont = matchRec(ins, rest, env, f)
		}
		for _, v := range newly {
			delete(env, v)
		}
		return cont
	})
	return cont
}
