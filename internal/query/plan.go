package query

import (
	"sync"

	"repro/internal/instance"
)

// Plan is a conjunctive body compiled for repeated evaluation: a fixed atom
// order chosen by the most-bound heuristic at compile time, integer variable
// slots instead of string-keyed bindings, and statically known bound/free
// positions per atom. Evaluation recurses over the compiled levels with
// per-level pattern buffers drawn from a pool, so the steady-state hot path
// performs no allocations and no map operations.
//
// A Plan is immutable after Compile and safe for concurrent use; per-call
// evaluation state lives in a sync.Pool. Plans are cached per dependency
// (dependency.TGD/EGD) and shared by the parallel evaluation paths.
type Plan struct {
	vars   []string // slot → variable name; the first nPre slots are pre-bound
	slotOf map[string]int
	nPre   int
	atoms  []planAtom
	pool   sync.Pool // *evalState
}

// slotRef ties a tuple position to a variable slot.
type slotRef struct{ pos, slot int }

// planOp is a per-position action on a candidate tuple: bind the slot to the
// tuple value, or check the value against an already-bound slot (repeated
// variables within one atom). Ops are executed in position order.
type planOp struct {
	pos, slot int
	check     bool
}

type planAtom struct {
	rel     string
	pattern []instance.Value // template: constant positions pre-filled
	bound   []bool           // static: true for constants and bound slots
	fills   []slotRef        // bound-variable positions to fill from env
	ops     []planOp         // unbound positions, in position order
}

type evalState struct {
	env      []instance.Value
	patterns [][]instance.Value
}

// NumSlots returns the number of variable slots (pre-bound vars first).
func (p *Plan) NumSlots() int { return len(p.vars) }

// Slot returns the slot index of the named variable, or -1 if the variable
// occurs neither in the atoms nor in the pre-bound set.
func (p *Plan) Slot(name string) int {
	if i, ok := p.slotOf[name]; ok {
		return i
	}
	return -1
}

// VarNames returns the slot → name table. The slice is the plan's own
// storage and must not be modified.
func (p *Plan) VarNames() []string { return p.vars }

func (p *Plan) state() *evalState {
	if st, ok := p.pool.Get().(*evalState); ok {
		return st
	}
	st := &evalState{
		env:      make([]instance.Value, len(p.vars)),
		patterns: make([][]instance.Value, len(p.atoms)),
	}
	for i, a := range p.atoms {
		st.patterns[i] = make([]instance.Value, len(a.pattern))
	}
	return st
}

// Eval enumerates every extension of the pre-bound slots that makes all
// compiled atoms true in ins, invoking f with the full slot environment.
// init supplies the values of the first len(init) (= nPre) slots; it may be
// nil when the plan has no pre-bound variables. The env slice passed to f is
// reused between calls — copy what you keep. Enumeration stops early when f
// returns false; Eval returns false iff it was stopped early.
func (p *Plan) Eval(ins *instance.Instance, init []instance.Value, f func(env []instance.Value) bool) bool {
	st := p.state()
	copy(st.env[:p.nPre], init)
	ok := p.run(ins, st, 0, f)
	p.pool.Put(st)
	return ok
}

func (p *Plan) run(ins *instance.Instance, st *evalState, lvl int, f func([]instance.Value) bool) bool {
	if lvl == len(p.atoms) {
		return f(st.env)
	}
	a := &p.atoms[lvl]
	pat := st.patterns[lvl]
	copy(pat, a.pattern)
	for _, fr := range a.fills {
		pat[fr.pos] = st.env[fr.slot]
	}
	rel, ok := ins.Relation(a.rel, len(a.pattern))
	if !ok {
		return true
	}
	cols := rel.Cols()
	// Bind the most selective bound position: probe each bound position's
	// posting list and scan the shortest. Posting lists hold live rows in
	// insertion order, so index-backed enumeration matches full-scan order.
	best := -1
	var bestList []int32
	for i, b := range a.bound {
		if !b {
			continue
		}
		l := rel.Postings(i, pat[i])
		if best == -1 || len(l) < len(bestList) {
			best, bestList = i, l
		}
	}
	if best >= 0 {
		for _, row := range bestList {
			if !p.step(ins, st, lvl, a, pat, cols, row, f) {
				return false
			}
		}
		return true
	}
	n := rel.Rows()
	if rel.HasDead() {
		for row := int32(0); row < n; row++ {
			if !rel.Alive(row) {
				continue
			}
			if !p.step(ins, st, lvl, a, pat, cols, row, f) {
				return false
			}
		}
		return true
	}
	for row := int32(0); row < n; row++ {
		if !p.step(ins, st, lvl, a, pat, cols, row, f) {
			return false
		}
	}
	return true
}

// step verifies one candidate row against the pattern, executes the atom's
// bind/check ops, and recurses. It returns false to stop the enumeration.
func (p *Plan) step(ins *instance.Instance, st *evalState, lvl int, a *planAtom, pat []instance.Value, cols [][]instance.Value, row int32, f func([]instance.Value) bool) bool {
	for i, b := range a.bound {
		if b && cols[i][row] != pat[i] {
			return true
		}
	}
	for _, op := range a.ops {
		if op.check {
			if cols[op.pos][row] != st.env[op.slot] {
				return true
			}
		} else {
			st.env[op.slot] = cols[op.pos][row]
		}
	}
	return p.run(ins, st, lvl+1, f)
}

// EvalBinding is the adapter that keeps func(Binding) callbacks working on
// top of slot-based evaluation: init supplies the pre-bound variables by
// name, and f receives a Binding covering every slot. The Binding passed to
// f is reused between calls — clone it if you keep it (the same contract as
// MatchAtoms).
func (p *Plan) EvalBinding(ins *instance.Instance, init Binding, f func(Binding) bool) bool {
	var initVals []instance.Value
	if p.nPre > 0 {
		initVals = make([]instance.Value, p.nPre)
		for i := 0; i < p.nPre; i++ {
			initVals[i] = init[p.vars[i]]
		}
	}
	out := make(Binding, len(p.vars))
	return p.Eval(ins, initVals, func(env []instance.Value) bool {
		for i, name := range p.vars {
			out[name] = env[i]
		}
		return f(out)
	})
}
