package query

import (
	"fmt"

	"repro/internal/instance"
)

// Compile builds a Plan for the conjunction of atoms, assuming the variables
// in preBound are bound before evaluation starts. The atom order is fixed at
// compile time by simulating the interpreted matcher's greedy most-bound
// heuristic: repeatedly pick the first remaining atom maximizing the number
// of constant-or-bound terms. Because boundness is determined statically
// (each variable is bound by the first chosen atom mentioning it, or by
// preBound), the compiled order — and hence the enumeration order of
// results — is identical to the interpreted engine's.
//
// Slots are assigned preBound first (in the given order), then remaining
// variables in the position order of the chosen atoms. Compile panics on a
// duplicate preBound name, since that indicates a caller bug.
func Compile(atoms []Atom, preBound []string) *Plan {
	p := &Plan{
		slotOf: make(map[string]int, len(preBound)+4*len(atoms)),
		nPre:   len(preBound),
	}
	for _, name := range preBound {
		if _, dup := p.slotOf[name]; dup {
			panic(fmt.Sprintf("query.Compile: duplicate pre-bound variable %q", name))
		}
		p.slotOf[name] = len(p.vars)
		p.vars = append(p.vars, name)
	}

	remaining := make([]Atom, len(atoms))
	copy(remaining, atoms)
	p.atoms = make([]planAtom, 0, len(atoms))
	for len(remaining) > 0 {
		// Mirror matchRec's selection: score 2 per const-or-bound term,
		// strict > so the first maximum wins.
		best, bestScore := 0, -1
		for i, a := range remaining {
			score := 0
			for _, t := range a.Terms {
				if !t.IsVar() {
					score += 2
				} else if _, ok := p.slotOf[t.Var]; ok {
					score += 2
				}
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		p.atoms = append(p.atoms, p.compileAtom(a))
	}
	return p
}

// compileAtom classifies each position of the atom against the variables
// bound so far, extending the slot table with newly bound variables.
func (p *Plan) compileAtom(a Atom) planAtom {
	pa := planAtom{
		rel:     a.Rel,
		pattern: make([]instance.Value, len(a.Terms)),
		bound:   make([]bool, len(a.Terms)),
	}
	seenHere := make(map[string]bool, len(a.Terms))
	for i, t := range a.Terms {
		if !t.IsVar() {
			pa.pattern[i] = t.Val
			pa.bound[i] = true
			continue
		}
		if slot, ok := p.slotOf[t.Var]; ok {
			if seenHere[t.Var] {
				// Bound earlier in this same atom: runtime equality check,
				// matching the interpreted engine's repeated-variable path.
				pa.ops = append(pa.ops, planOp{pos: i, slot: slot, check: true})
				continue
			}
			pa.bound[i] = true
			pa.fills = append(pa.fills, slotRef{pos: i, slot: slot})
			continue
		}
		slot := len(p.vars)
		p.slotOf[t.Var] = slot
		p.vars = append(p.vars, t.Var)
		seenHere[t.Var] = true
		pa.ops = append(pa.ops, planOp{pos: i, slot: slot})
	}
	return pa
}
