package query_test

// Randomized crosscheck of the compiled Plan path against the interpreted
// reference engine: on random instances (via genwl) and random conjunctive
// bodies, MatchAtoms (Compile + EvalBinding) must produce exactly the same
// binding sequence as MatchAtomsRef — same bindings, same order, same
// early-stop behavior. Run under -race by `make ci`, where it doubles as a
// data-race workload for the shared compiled plans.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/genwl"
	"repro/internal/instance"
	"repro/internal/query"
)

// randomConjunction builds 1–4 atoms over the relations of the workload
// instance, drawing variables from a small pool (so repeated variables and
// cross-atom joins are common) and occasionally using constants.
func randomConjunction(rng *rand.Rand, rels map[string]int, consts []instance.Value) []query.Atom {
	vars := []string{"x", "y", "z", "w", "v"}
	names := make([]string, 0, len(rels))
	for n := range rels {
		names = append(names, n)
	}
	// Deterministic order for reproducibility (map iteration is random).
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	n := 1 + rng.Intn(4)
	atoms := make([]query.Atom, 0, n)
	for i := 0; i < n; i++ {
		rel := names[rng.Intn(len(names))]
		terms := make([]query.Term, rels[rel])
		for j := range terms {
			if rng.Intn(5) == 0 && len(consts) > 0 {
				terms[j] = query.C(consts[rng.Intn(len(consts))])
			} else {
				terms[j] = query.V(vars[rng.Intn(len(vars))])
			}
		}
		atoms = append(atoms, query.A(rel, terms...))
	}
	return atoms
}

// bindingKey renders a binding canonically for sequence comparison.
func bindingKey(b query.Binding) string {
	vars := []string{"x", "y", "z", "w", "v"}
	out := ""
	for _, v := range vars {
		if val, ok := b[v]; ok {
			out += fmt.Sprintf("%s=%v;", v, val)
		}
	}
	return out
}

// collect runs a matcher, recording the sequence of bindings and stopping
// after limit results (0 = unbounded). It returns the sequence and the
// matcher's return value.
func collect(match func(f func(query.Binding) bool) bool, limit int) ([]string, bool) {
	var seq []string
	ret := match(func(b query.Binding) bool {
		seq = append(seq, bindingKey(b))
		return limit == 0 || len(seq) < limit
	})
	return seq, ret
}

func TestMatchAtomsCrosscheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []*instance.Instance{
		genwl.RandomEdges("E", 12, 1),
		genwl.RandomEdges("E", 30, 2),
		genwl.RandomLayeredSource(16, 3),
		genwl.TwoNineCycles(),
		genwl.EgdOnlySource(8, true, 4),
	}
	relsOf := func(ins *instance.Instance) map[string]int {
		rels := make(map[string]int)
		for _, a := range ins.Atoms() {
			rels[a.Rel] = len(a.Args)
		}
		return rels
	}
	cases := 0
	for cases < 200 {
		ins := workloads[rng.Intn(len(workloads))]
		rels := relsOf(ins)
		dom := ins.Dom()
		atoms := randomConjunction(rng, rels, dom)

		// Sometimes pre-bind a variable, exercising the preBound slot path.
		init := query.Binding{}
		if rng.Intn(3) == 0 && len(dom) > 0 {
			init["x"] = dom[rng.Intn(len(dom))]
		}
		// Sometimes stop early, exercising the cancellation contract.
		limit := 0
		if rng.Intn(4) == 0 {
			limit = 1 + rng.Intn(3)
		}

		gotSeq, gotRet := collect(func(f func(query.Binding) bool) bool {
			return query.MatchAtoms(ins, atoms, init, f)
		}, limit)
		wantSeq, wantRet := collect(func(f func(query.Binding) bool) bool {
			return query.MatchAtomsRef(ins, atoms, init, f)
		}, limit)

		if gotRet != wantRet {
			t.Fatalf("case %d: atoms=%v init=%v limit=%d: return %v, reference %v",
				cases, atoms, init, limit, gotRet, wantRet)
		}
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("case %d: atoms=%v init=%v limit=%d: %d bindings, reference %d\ngot:  %v\nwant: %v",
				cases, atoms, init, limit, len(gotSeq), len(wantSeq), gotSeq, wantSeq)
		}
		for i := range gotSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("case %d: atoms=%v init=%v: binding %d differs: %s vs reference %s",
					cases, atoms, init, i, gotSeq[i], wantSeq[i])
			}
		}
		cases++
	}
}
