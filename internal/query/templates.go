package query

import (
	"repro/internal/instance"
)

// AtomTemplates instantiate a list of atoms under a slot environment without
// any map lookups: each argument is either a constant or a slot index into
// the env of the Plan the templates were compiled against. They are the
// slot-based counterpart of instantiating head atoms under a Binding.
type AtomTemplates struct {
	atoms []atomTemplate
}

type atomTemplate struct {
	rel   string
	args  []instance.Value // constant positions pre-filled
	slots []int            // per position: env slot, or -1 for constants
}

// NewAtomTemplates compiles the atoms against the plan's slot table. Every
// variable must have a slot in p (occur in p's atoms or pre-bound set);
// NewAtomTemplates panics otherwise, since that indicates a caller bug.
func NewAtomTemplates(atoms []Atom, p *Plan) *AtomTemplates {
	ts := &AtomTemplates{atoms: make([]atomTemplate, len(atoms))}
	for i, a := range atoms {
		t := atomTemplate{
			rel:   a.Rel,
			args:  make([]instance.Value, len(a.Terms)),
			slots: make([]int, len(a.Terms)),
		}
		for j, term := range a.Terms {
			if !term.IsVar() {
				t.args[j] = term.Val
				t.slots[j] = -1
				continue
			}
			slot := p.Slot(term.Var)
			if slot < 0 {
				panic("query.NewAtomTemplates: variable " + term.Var + " has no slot")
			}
			t.slots[j] = slot
		}
		ts.atoms[i] = t
	}
	return ts
}

// AllPresent reports whether every templated atom, instantiated under the
// environment, is present in ins — Instantiate followed by Has checks, but
// without materializing the atom list (the α-chase applicability test runs
// it once per body match per pass).
func (ts *AtomTemplates) AllPresent(ins *instance.Instance, env []instance.Value) bool {
	var buf [8]instance.Value
	for _, t := range ts.atoms {
		args := buf[:0]
		if len(t.args) > cap(buf) {
			args = make([]instance.Value, 0, len(t.args))
		}
		for j, slot := range t.slots {
			if slot >= 0 {
				args = append(args, env[slot])
			} else {
				args = append(args, t.args[j])
			}
		}
		if !ins.Has(instance.Atom{Rel: t.rel, Args: args}) {
			return false
		}
	}
	return true
}

// Instantiate returns the atoms under the environment. The returned atoms
// use freshly allocated argument slices.
func (ts *AtomTemplates) Instantiate(env []instance.Value) []instance.Atom {
	out := make([]instance.Atom, len(ts.atoms))
	for i, t := range ts.atoms {
		args := make([]instance.Value, len(t.args))
		copy(args, t.args)
		for j, slot := range t.slots {
			if slot >= 0 {
				args[j] = env[slot]
			}
		}
		out[i] = instance.Atom{Rel: t.rel, Args: args}
	}
	return out
}
