//go:build !race

package query_test

// Alloc guard for the compiled evaluation hot path: a compiled Plan must
// evaluate with (amortized) zero allocations per call — per-level buffers
// come from the plan's pool and results are slot slices, not maps. A
// regression that reintroduces per-step allocation fails this test long
// before it would show up in the benchmarks.
//
// Excluded under -race: the race runtime instruments allocations and makes
// AllocsPerRun meaningless there.

import (
	"testing"

	"repro/internal/genwl"
	"repro/internal/instance"
	"repro/internal/query"
)

func TestPlanEvalAllocFree(t *testing.T) {
	ins := genwl.TwoNineCycles()
	atoms := []query.Atom{
		query.A("E", query.V("x"), query.V("y")),
		query.A("E", query.V("y"), query.V("z")),
		query.A("E", query.V("z"), query.V("w")),
	}
	plan := query.Compile(atoms, nil)
	count := 0
	eval := func() {
		plan.Eval(ins, nil, func(env []instance.Value) bool {
			count++
			return true
		})
	}
	eval() // prime the plan's eval-state pool
	if count == 0 {
		t.Fatal("workload produced no matches; the guard would be vacuous")
	}
	// Budget 0: the steady-state slot path performs no allocations at all.
	// sync.Pool can in principle lose state across GCs mid-measurement, so
	// allow a fraction of a state allocation amortized over the runs.
	if avg := testing.AllocsPerRun(100, eval); avg > 0.5 {
		t.Errorf("Plan.Eval allocates %.2f objects/run on the hot path; budget is 0", avg)
	}
}

// TestMatchAtomsAllocBudget guards the one-shot MatchAtoms entry point,
// which pays a single compile per call: its allocation count must stay
// bounded by plan size, not by the number of results.
func TestMatchAtomsAllocBudget(t *testing.T) {
	ins := genwl.TwoNineCycles()
	atoms := []query.Atom{
		query.A("E", query.V("x"), query.V("y")),
		query.A("E", query.V("y"), query.V("z")),
		query.A("E", query.V("z"), query.V("w")),
	}
	count := 0
	run := func() {
		query.MatchAtoms(ins, atoms, nil, func(b query.Binding) bool {
			count++
			return true
		})
	}
	run()
	if count == 0 {
		t.Fatal("workload produced no matches; the guard would be vacuous")
	}
	// ~54 result tuples per run: a per-result allocation would cost 50+.
	const budget = 40
	if avg := testing.AllocsPerRun(50, run); avg > budget {
		t.Errorf("MatchAtoms allocates %.1f objects/run; budget is %d (compile cost only)", avg, budget)
	}
}
