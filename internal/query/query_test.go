package query

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/instance"
)

func c(n string) instance.Value { return instance.Const(n) }

func graph(edges ...[2]string) *instance.Instance {
	ins := instance.New()
	for _, e := range edges {
		ins.Add(instance.NewAtom("E", c(e[0]), c(e[1])))
	}
	return ins
}

func TestEvalAtoms(t *testing.T) {
	ins := graph([2]string{"a", "b"})
	if !Eval(ins, A("E", CN("a"), CN("b")), Binding{}) {
		t.Fatal("present atom should hold")
	}
	if Eval(ins, A("E", CN("b"), CN("a")), Binding{}) {
		t.Fatal("absent atom should not hold")
	}
}

func TestEvalConnectives(t *testing.T) {
	ins := graph([2]string{"a", "b"})
	e := A("E", CN("a"), CN("b"))
	ne := A("E", CN("b"), CN("a"))
	cases := []struct {
		f    Formula
		want bool
	}{
		{Conj(e, e), true},
		{Conj(e, ne), false},
		{Disj(ne, e), true},
		{Disj(ne, ne), false},
		{Not{F: ne}, true},
		{Implies{L: ne, R: ne}, true},
		{Implies{L: e, R: ne}, false},
		{Truth(true), true},
		{Truth(false), false},
		{Eq{L: CN("a"), R: CN("a")}, true},
		{Eq{L: CN("a"), R: CN("b")}, false},
	}
	for _, cse := range cases {
		if got := Eval(ins, cse.f, Binding{}); got != cse.want {
			t.Errorf("Eval(%v) = %v, want %v", cse.f, got, cse.want)
		}
	}
}

func TestEvalQuantifiers(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "a"})
	// Every node has an outgoing edge.
	all := Forall{Vars: []string{"x"}, F: Implies{
		L: Exists{Vars: []string{"u"}, F: Disj(A("E", V("x"), V("u")), A("E", V("u"), V("x")))},
		R: Exists{Vars: []string{"y"}, F: A("E", V("x"), V("y"))},
	}}
	if !Eval(ins, all, Binding{}) {
		t.Fatal("2-cycle: all nodes have out-edges")
	}
	ins2 := graph([2]string{"a", "b"})
	if Eval(ins2, all, Binding{}) {
		t.Fatal("single edge: b has no out-edge")
	}
	exx := Exists{Vars: []string{"x", "y"}, F: A("E", V("x"), V("y"))}
	if !Eval(ins2, exx, Binding{}) {
		t.Fatal("∃xy E(x,y) should hold")
	}
}

func TestEvalFormulaConstantsInDomain(t *testing.T) {
	// The formula mentions constant z absent from the instance; active-domain
	// quantification must still range over it.
	ins := graph([2]string{"a", "b"})
	f := Exists{Vars: []string{"x"}, F: Eq{L: V("x"), R: CN("zzz")}}
	if !Eval(ins, f, Binding{}) {
		t.Fatal("formula constants must join the quantification range")
	}
}

func TestFreeVars(t *testing.T) {
	f := Exists{Vars: []string{"y"}, F: Conj(A("E", V("x"), V("y")), A("E", V("y"), V("z")))}
	got := FreeVars(f)
	want := []string{"x", "z"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
}

func TestFOQueryAnswers(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "c"})
	q := FOQuery{Vars: []string{"x"}, F: Exists{Vars: []string{"y"}, F: A("E", V("x"), V("y"))}}
	ans := q.Answers(ins)
	var names []string
	for _, t := range ans {
		names = append(names, t[0].String())
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("answers = %v", names)
	}
}

func TestCQAnswers(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "a"})
	// Two-step reachability.
	q := CQ{
		Head:  []string{"x", "z"},
		Atoms: []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("z"))},
	}
	ans := q.Answers(ins)
	if ans.Len() != 3 {
		t.Fatalf("triangle 2-paths = %d, want 3 (%v)", ans.Len(), ans)
	}
	if !ans.Has(Tuple{c("a"), c("c")}) {
		t.Fatalf("missing (a,c): %v", ans)
	}
}

func TestCQWithInequality(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("b")),
		instance.NewAtom("E", c("a"), c("a")),
	)
	q := CQ{
		Head:   []string{"x"},
		Atoms:  []Atom{A("E", V("x"), V("y"))},
		Diseqs: []Diseq{{L: V("x"), R: V("y")}},
	}
	ans := q.Answers(ins)
	if ans.Len() != 1 || !ans.Has(Tuple{c("a")}) {
		t.Fatalf("answers = %v", ans)
	}
	// Only the self-loop match is filtered, not the whole variable.
	q2 := CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("x"))}}
	if got := q2.Answers(ins); got.Len() != 1 {
		t.Fatalf("self-loop query = %v", got)
	}
}

func TestCQFormulaAgreesWithDirectEval(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"}, [2]string{"d", "a"})
	q := CQ{
		Head:   []string{"x"},
		Atoms:  []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("z"))},
		Diseqs: []Diseq{{L: V("x"), R: V("z")}},
	}
	direct := q.Answers(ins)
	viaFO := NewTupleSet(q.Formula().Answers(ins)...)
	if !direct.Equal(viaFO) {
		t.Fatalf("CQ direct %v != FO %v", direct, viaFO)
	}
}

func TestUCQ(t *testing.T) {
	ins := graph([2]string{"a", "b"})
	u := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("y"), V("x"))}},
	)
	if !u.Pure() {
		t.Fatal("UCQ without inequalities should be Pure")
	}
	ans := u.Answers(ins)
	if ans.Len() != 2 {
		t.Fatalf("UCQ answers = %v", ans)
	}
}

func TestNullFree(t *testing.T) {
	s := NewTupleSet(
		Tuple{c("a"), c("b")},
		Tuple{c("a"), instance.Null(0)},
	)
	nf := NullFree(s)
	if nf.Len() != 1 || !nf.Has(Tuple{c("a"), c("b")}) {
		t.Fatalf("NullFree = %v", nf)
	}
}

func TestTupleSetOps(t *testing.T) {
	a := NewTupleSet(Tuple{c("a")}, Tuple{c("b")})
	b := NewTupleSet(Tuple{c("b")}, Tuple{c("c")})
	inter := a.Intersect(b)
	if inter.Len() != 1 || !inter.Has(Tuple{c("b")}) {
		t.Fatalf("Intersect = %v", inter)
	}
	u := NewTupleSet()
	u.UnionWith(a)
	u.UnionWith(b)
	if u.Len() != 3 {
		t.Fatalf("Union = %v", u)
	}
	if !inter.SubsetOf(a) || a.SubsetOf(inter) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.Equal(NewTupleSet(Tuple{c("b")}, Tuple{c("a")})) {
		t.Fatal("Equal must ignore order")
	}
}

func TestMatchAtomsRepeatedVariable(t *testing.T) {
	ins := instance.FromAtoms(
		instance.NewAtom("E", c("a"), c("a")),
		instance.NewAtom("E", c("a"), c("b")),
	)
	n := 0
	MatchAtoms(ins, []Atom{A("E", V("x"), V("x"))}, Binding{}, func(env Binding) bool {
		if env["x"] != c("a") {
			t.Errorf("bad binding %v", env)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("repeated-variable matches = %d, want 1", n)
	}
}

func TestMatchAtomsJoin(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	var pairs []string
	MatchAtoms(ins, []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("z"))}, Binding{}, func(env Binding) bool {
		pairs = append(pairs, env["x"].String()+env["z"].String())
		return true
	})
	if len(pairs) != 1 || pairs[0] != "ac" {
		t.Fatalf("join results = %v", pairs)
	}
}

func TestMatchAtomsInitialBinding(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"c", "d"})
	n := 0
	MatchAtoms(ins, []Atom{A("E", V("x"), V("y"))}, Binding{"x": c("c")}, func(env Binding) bool {
		if env["y"] != c("d") {
			t.Errorf("bad y: %v", env["y"])
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("matches = %d, want 1", n)
	}
}

func TestMatchAtomsEarlyStop(t *testing.T) {
	ins := graph([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"c", "d"})
	n := 0
	completed := MatchAtoms(ins, []Atom{A("E", V("x"), V("y"))}, Binding{}, func(env Binding) bool {
		n++
		return false
	})
	if completed || n != 1 {
		t.Fatalf("early stop: completed=%v n=%d", completed, n)
	}
}

// Property: CQ evaluation agrees with its FO translation on random graphs.
func TestQuickCQAgreesWithFO(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	q := CQ{
		Head:  []string{"x"},
		Atoms: []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("x"))},
	}
	f := func(adj uint16) bool {
		ins := instance.New()
		bit := 0
		for _, u := range nodes {
			for _, v := range nodes {
				if adj&(1<<bit) != 0 {
					ins.Add(instance.NewAtom("E", c(u), c(v)))
				}
				bit++
			}
		}
		direct := q.Answers(ins)
		viaFO := NewTupleSet(q.Formula().Answers(ins)...)
		return direct.Equal(viaFO)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
