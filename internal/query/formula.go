// Package query implements first-order formulas and queries over relational
// instances with nulls, evaluated under active-domain semantics, plus the
// structured query classes the paper studies: conjunctive queries (CQs),
// CQs with inequalities, and unions of conjunctive queries (UCQs).
//
// Formulas serve double duty: they are the query language of Section 7 and
// the body language of source-to-target tgds, which the paper (following
// Libkin) allows to be arbitrary first-order formulas over the source schema
// with quantifiers relativized to the active domain.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/instance"
)

// Term is a variable or a constant appearing in a formula.
// A Term with Var != "" denotes the variable of that name; otherwise it
// denotes the constant value Val. Nulls never occur in formulas.
type Term struct {
	Var string
	Val instance.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v instance.Value) Term {
	if v.IsNull() {
		panic("query: null in formula term")
	}
	return Term{Val: v}
}

// CN returns a constant term for the named constant.
func CN(name string) Term { return C(instance.Const(name)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Val.String()
}

// resolve returns the value of the term under env; ok is false if the term
// is an unbound variable.
func (t Term) resolve(env Binding) (instance.Value, bool) {
	if !t.IsVar() {
		return t.Val, true
	}
	v, ok := env[t.Var]
	return v, ok
}

// Binding maps variable names to domain values.
type Binding map[string]instance.Value

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	cp := make(Binding, len(b))
	for k, v := range b {
		cp[k] = v
	}
	return cp
}

// Formula is a first-order formula over a relational vocabulary with
// constants. The implementations are Atom, Eq, Not, And, Or, Implies,
// Exists, Forall and Truth.
type Formula interface {
	fmt.Stringer
	// freeVars adds the free variables of the formula to the set.
	freeVars(bound map[string]bool, out map[string]bool)
}

// Atom is a relational atom R(t1,…,tr).
type Atom struct {
	Rel   string
	Terms []Term
}

// A constructs an atom formula.
func A(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

// Vars returns the variable names of the atom in order of first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

func (a Atom) freeVars(bound, out map[string]bool) {
	for _, t := range a.Terms {
		if t.IsVar() && !bound[t.Var] {
			out[t.Var] = true
		}
	}
}

// Eq is the equality t1 = t2.
type Eq struct{ L, R Term }

func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }
func (e Eq) freeVars(bound, out map[string]bool) {
	for _, t := range []Term{e.L, e.R} {
		if t.IsVar() && !bound[t.Var] {
			out[t.Var] = true
		}
	}
}

// Not is negation.
type Not struct{ F Formula }

func (n Not) String() string                      { return "!(" + n.F.String() + ")" }
func (n Not) freeVars(bound, out map[string]bool) { n.F.freeVars(bound, out) }

// And is a conjunction of one or more formulas.
type And struct{ Fs []Formula }

// Conj builds a conjunction; with no arguments it is truth.
func Conj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth(true)
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return And{Fs: fs}
}

func (a And) String() string { return joinFormulas(a.Fs, " & ") }
func (a And) freeVars(bound, out map[string]bool) {
	for _, f := range a.Fs {
		f.freeVars(bound, out)
	}
}

// Or is a disjunction of one or more formulas.
type Or struct{ Fs []Formula }

// Disj builds a disjunction; with no arguments it is falsity.
func Disj(fs ...Formula) Formula {
	if len(fs) == 0 {
		return Truth(false)
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return Or{Fs: fs}
}

func (o Or) String() string { return joinFormulas(o.Fs, " | ") }
func (o Or) freeVars(bound, out map[string]bool) {
	for _, f := range o.Fs {
		f.freeVars(bound, out)
	}
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Implies is material implication.
type Implies struct{ L, R Formula }

func (i Implies) String() string { return "(" + i.L.String() + ") -> (" + i.R.String() + ")" }
func (i Implies) freeVars(bound, out map[string]bool) {
	i.L.freeVars(bound, out)
	i.R.freeVars(bound, out)
}

// Exists is existential quantification over one or more variables.
type Exists struct {
	Vars []string
	F    Formula
}

func (e Exists) String() string {
	return "exists " + strings.Join(e.Vars, ",") + " (" + e.F.String() + ")"
}
func (e Exists) freeVars(bound, out map[string]bool) { quantFreeVars(e.Vars, e.F, bound, out) }

// Forall is universal quantification over one or more variables.
type Forall struct {
	Vars []string
	F    Formula
}

func (u Forall) String() string {
	return "forall " + strings.Join(u.Vars, ",") + " (" + u.F.String() + ")"
}
func (u Forall) freeVars(bound, out map[string]bool) { quantFreeVars(u.Vars, u.F, bound, out) }

func quantFreeVars(vars []string, f Formula, bound, out map[string]bool) {
	inner := make(map[string]bool, len(bound)+len(vars))
	for v := range bound {
		inner[v] = true
	}
	for _, v := range vars {
		inner[v] = true
	}
	f.freeVars(inner, out)
}

// Truth is the constant true or false formula.
type Truth bool

func (t Truth) String() string {
	if t {
		return "true"
	}
	return "false"
}
func (t Truth) freeVars(bound, out map[string]bool) {}

// FreeVars returns the free variables of the formula in sorted order.
func FreeVars(f Formula) []string {
	out := make(map[string]bool)
	f.freeVars(map[string]bool{}, out)
	vars := make([]string, 0, len(out))
	for v := range out {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}
