package query

import (
	"fmt"

	"repro/internal/instance"
)

// This file implements the classical Chandra–Merlin machinery the paper
// leans on (reference [3]): containment and equivalence of conjunctive
// queries via canonical instances, and CQ minimization (the core of a
// query). The same correspondence — I ⊨ ϕ_J iff there is a homomorphism
// J → I — underlies Theorem 4.8's bridge between CWA-solutions and
// universal solutions.

// canonicalInstance freezes the CQ's body into an instance: variables
// become labeled nulls, constants stay. It returns the instance and the
// head tuple under the freezing.
func canonicalInstance(q CQ) (*instance.Instance, Tuple, error) {
	if q.HasInequalities() {
		return nil, nil, fmt.Errorf("query: containment via canonical instances requires inequality-free CQs")
	}
	varNull := make(map[string]instance.Value)
	next := int64(0)
	freeze := func(t Term) instance.Value {
		if !t.IsVar() {
			return t.Val
		}
		v, ok := varNull[t.Var]
		if !ok {
			v = instance.Null(next)
			next++
			varNull[t.Var] = v
		}
		return v
	}
	ins := instance.New()
	for _, a := range q.Atoms {
		args := make([]instance.Value, len(a.Terms))
		for i, t := range a.Terms {
			args[i] = freeze(t)
		}
		ins.Add(instance.Atom{Rel: a.Rel, Args: args})
	}
	head := make(Tuple, len(q.Head))
	for i, v := range q.Head {
		hv, ok := varNull[v]
		if !ok {
			return nil, nil, fmt.Errorf("query: head variable %q not bound by the body", v)
		}
		head[i] = hv
	}
	return ins, head, nil
}

// ContainedIn reports whether q1 ⊆ q2 (every answer of q1 is an answer of
// q2 on every instance), decided by evaluating q2 on q1's canonical
// instance and checking that the frozen head is among the answers
// (Chandra–Merlin). Both queries must be inequality-free and share head
// arity.
func ContainedIn(q1, q2 CQ) (bool, error) {
	if len(q1.Head) != len(q2.Head) {
		return false, fmt.Errorf("query: containment requires equal head arity")
	}
	canon, head, err := canonicalInstance(q1)
	if err != nil {
		return false, err
	}
	if q2.HasInequalities() {
		return false, fmt.Errorf("query: containment via canonical instances requires inequality-free CQs")
	}
	return q2.Answers(canon).Has(head), nil
}

// Equivalent reports whether the two CQs are equivalent (mutual
// containment).
func Equivalent(q1, q2 CQ) (bool, error) {
	a, err := ContainedIn(q1, q2)
	if err != nil || !a {
		return false, err
	}
	return ContainedIn(q2, q1)
}

// Minimize returns an equivalent CQ with a minimal number of body atoms —
// the core of the query. It greedily drops atoms whose removal leaves an
// equivalent query; by Chandra–Merlin the result is unique up to variable
// renaming.
func Minimize(q CQ) (CQ, error) {
	if q.HasInequalities() {
		return CQ{}, fmt.Errorf("query: Minimize requires an inequality-free CQ")
	}
	cur := CQ{Head: append([]string(nil), q.Head...), Atoms: append([]Atom(nil), q.Atoms...)}
	for i := 0; i < len(cur.Atoms); {
		if len(cur.Atoms) == 1 {
			break
		}
		cand := CQ{Head: cur.Head, Atoms: append(append([]Atom(nil), cur.Atoms[:i]...), cur.Atoms[i+1:]...)}
		// Dropping an atom can only weaken the query (cur ⊆ cand always);
		// keep the drop when cand ⊆ cur, i.e. when they are equivalent —
		// and only when the candidate still binds all head variables.
		if !bindsHead(cand) {
			i++
			continue
		}
		contained, err := ContainedIn(cand, cur)
		if err != nil {
			return CQ{}, err
		}
		if contained {
			cur = cand
			i = 0
			continue
		}
		i++
	}
	return cur, nil
}

func bindsHead(q CQ) bool {
	bound := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			bound[v] = true
		}
	}
	for _, v := range q.Head {
		if !bound[v] {
			return false
		}
	}
	return true
}

// MinimizeUCQ removes disjuncts that are contained in another disjunct and
// minimizes each survivor, yielding an equivalent irredundant union
// (Sagiv–Yannakakis normal form). All disjuncts must be inequality-free.
func MinimizeUCQ(u UCQ) (UCQ, error) {
	kept := make([]CQ, 0, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		redundant := false
		for j, other := range u.Disjuncts {
			if i == j {
				continue
			}
			// Drop d if it is contained in a surviving other disjunct; break
			// ties between equivalent disjuncts by index so exactly one stays.
			sub, err := ContainedIn(d, other)
			if err != nil {
				return UCQ{}, err
			}
			if !sub {
				continue
			}
			back, err := ContainedIn(other, d)
			if err != nil {
				return UCQ{}, err
			}
			if !back || j < i {
				redundant = true
				break
			}
		}
		if !redundant {
			min, err := Minimize(d)
			if err != nil {
				return UCQ{}, err
			}
			kept = append(kept, min)
		}
	}
	if len(kept) == 0 {
		return UCQ{}, fmt.Errorf("query: minimization removed every disjunct")
	}
	return NewUCQ(kept...), nil
}

// CanonicalFact builds the canonical fact ϕ_T of a target instance
// (Section 4): the Boolean sentence ∃x̄ ψ(x̄) whose conjuncts are T's atoms
// with every null replaced by its variable. By Chandra–Merlin, I ⊨ ϕ_T iff
// there is a homomorphism T → I — the bridge behind Theorem 4.8.
func CanonicalFact(t *instance.Instance) FOQuery {
	varOf := make(map[instance.Value]string)
	var vars []string
	var conjs []Formula
	for _, a := range t.Atoms() {
		terms := make([]Term, len(a.Args))
		for i, v := range a.Args {
			if v.IsConst() {
				terms[i] = C(v)
				continue
			}
			name, ok := varOf[v]
			if !ok {
				name = fmt.Sprintf("x%d", v.NullLabel())
				varOf[v] = name
				vars = append(vars, name)
			}
			terms[i] = V(name)
		}
		conjs = append(conjs, Atom{Rel: a.Rel, Terms: terms})
	}
	body := Conj(conjs...)
	if len(vars) > 0 {
		body = Exists{Vars: vars, F: body}
	}
	return FOQuery{F: body}
}

// UCQContainedIn reports whether u1 ⊆ u2 for unions of inequality-free
// CQs: every disjunct of u1 must be contained in some disjunct of u2
// (Sagiv–Yannakakis).
func UCQContainedIn(u1, u2 UCQ) (bool, error) {
	for _, d1 := range u1.Disjuncts {
		foundCover := false
		for _, d2 := range u2.Disjuncts {
			ok, err := ContainedIn(d1, d2)
			if err != nil {
				return false, err
			}
			if ok {
				foundCover = true
				break
			}
		}
		if !foundCover {
			return false, nil
		}
	}
	return true, nil
}
