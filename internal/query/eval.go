package query

import (
	"strings"

	"repro/internal/instance"
)

// Eval decides whether the formula holds in the instance under the given
// environment, with all quantifiers relativized to the active domain of the
// instance (plus the values bound in env and the constants mentioned by the
// formula itself). env must bind every free variable of f.
func Eval(ins *instance.Instance, f Formula, env Binding) bool {
	dom := evalDomain(ins, f, env)
	return eval(ins, f, env, dom)
}

// evalDomain is the quantification range: the active domain of the instance,
// every value bound in env, and every constant occurring in f. Including the
// formula's own constants makes sentences like ∃x(x = a) behave as expected
// on instances that do not mention a.
func evalDomain(ins *instance.Instance, f Formula, env Binding) []instance.Value {
	seen := make(map[instance.Value]bool)
	var dom []instance.Value
	add := func(v instance.Value) {
		if !seen[v] {
			seen[v] = true
			dom = append(dom, v)
		}
	}
	for _, v := range ins.Dom() {
		add(v)
	}
	for _, v := range env {
		add(v)
	}
	for _, t := range formulaConstants(f) {
		add(t)
	}
	return dom
}

func formulaConstants(f Formula) []instance.Value {
	var out []instance.Value
	var walk func(Formula)
	addTerm := func(t Term) {
		if !t.IsVar() {
			out = append(out, t.Val)
		}
	}
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom:
			for _, t := range g.Terms {
				addTerm(t)
			}
		case Eq:
			addTerm(g.L)
			addTerm(g.R)
		case Not:
			walk(g.F)
		case And:
			for _, h := range g.Fs {
				walk(h)
			}
		case Or:
			for _, h := range g.Fs {
				walk(h)
			}
		case Implies:
			walk(g.L)
			walk(g.R)
		case Exists:
			walk(g.F)
		case Forall:
			walk(g.F)
		case Truth:
		default:
			panic("query: unknown formula type")
		}
	}
	walk(f)
	return out
}

func eval(ins *instance.Instance, f Formula, env Binding, dom []instance.Value) bool {
	switch g := f.(type) {
	case Truth:
		return bool(g)
	case Atom:
		args := make([]instance.Value, len(g.Terms))
		for i, t := range g.Terms {
			v, ok := t.resolve(env)
			if !ok {
				panic("query: unbound variable " + t.Var + " in Eval")
			}
			args[i] = v
		}
		return ins.Has(instance.Atom{Rel: g.Rel, Args: args})
	case Eq:
		l, ok := g.L.resolve(env)
		if !ok {
			panic("query: unbound variable " + g.L.Var + " in Eval")
		}
		r, ok := g.R.resolve(env)
		if !ok {
			panic("query: unbound variable " + g.R.Var + " in Eval")
		}
		return l == r
	case Not:
		return !eval(ins, g.F, env, dom)
	case And:
		for _, h := range g.Fs {
			if !eval(ins, h, env, dom) {
				return false
			}
		}
		return true
	case Or:
		for _, h := range g.Fs {
			if eval(ins, h, env, dom) {
				return true
			}
		}
		return false
	case Implies:
		return !eval(ins, g.L, env, dom) || eval(ins, g.R, env, dom)
	case Exists:
		return evalQuant(ins, g.Vars, g.F, env, dom, false)
	case Forall:
		return evalQuant(ins, g.Vars, g.F, env, dom, true)
	default:
		panic("query: unknown formula type")
	}
}

// evalQuant handles nested quantifier blocks; universal=true computes ∀,
// otherwise ∃, short-circuiting as soon as the result is determined.
func evalQuant(ins *instance.Instance, vars []string, body Formula, env Binding, dom []instance.Value, universal bool) bool {
	if len(vars) == 0 {
		return eval(ins, body, env, dom)
	}
	v, rest := vars[0], vars[1:]
	old, hadOld := env[v]
	defer func() {
		if hadOld {
			env[v] = old
		} else {
			delete(env, v)
		}
	}()
	for _, d := range dom {
		env[v] = d
		r := evalQuant(ins, rest, body, env, dom, universal)
		if universal && !r {
			return false
		}
		if !universal && r {
			return true
		}
	}
	return universal
}

// FOQuery is a first-order query: a formula with an ordered tuple of answer
// variables (the free variables of F, in the order answers are reported).
type FOQuery struct {
	Vars []string
	F    Formula
}

// Boolean reports whether the query has no answer variables.
func (q FOQuery) Boolean() bool { return len(q.Vars) == 0 }

func (q FOQuery) String() string {
	if q.Boolean() {
		return q.F.String()
	}
	return "(" + strings.Join(q.Vars, ",") + ") . " + q.F.String()
}

// Answers evaluates the query over the instance under active-domain
// semantics and returns the answer tuples in deterministic order. For a
// Boolean query it returns one empty tuple if the sentence holds, and no
// tuples otherwise.
func (q FOQuery) Answers(ins *instance.Instance) []Tuple {
	dom := evalDomain(ins, q.F, Binding{})
	var out []Tuple
	env := make(Binding, len(q.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Vars) {
			if eval(ins, q.F, env, dom) {
				t := make(Tuple, len(q.Vars))
				for j, v := range q.Vars {
					t[j] = env[v]
				}
				out = append(out, t)
			}
			return
		}
		for _, d := range dom {
			env[q.Vars[i]] = d
			rec(i + 1)
		}
		delete(env, q.Vars[i])
	}
	rec(0)
	return out
}

// Holds evaluates a Boolean query.
func (q FOQuery) Holds(ins *instance.Instance) bool {
	if !q.Boolean() {
		panic("query: Holds on non-Boolean query")
	}
	return Eval(ins, q.F, Binding{})
}
