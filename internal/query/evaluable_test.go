package query

import (
	"strings"
	"testing"

	"repro/internal/instance"
)

func TestEvaluableInterface(t *testing.T) {
	ins := graph([2]string{"a", "b"})
	var qs []Evaluable = []Evaluable{
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
		NewUCQ(CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}}),
		FOQuery{Vars: []string{"x"}, F: Exists{Vars: []string{"y"}, F: A("E", V("x"), V("y"))}},
	}
	for _, q := range qs {
		if q.Arity() != 1 {
			t.Errorf("%T arity = %d", q, q.Arity())
		}
		ans := q.AnswerSet(ins)
		if ans.Len() != 1 || !ans.Has(Tuple{c("a")}) {
			t.Errorf("%T answers = %v", q, ans)
		}
		if q.String() == "" {
			t.Errorf("%T has empty String", q)
		}
	}
}

func TestHoldsBooleanQueries(t *testing.T) {
	ins := graph([2]string{"a", "b"})
	cq := CQ{Atoms: []Atom{A("E", V("x"), V("y"))}}
	if !cq.Holds(ins) {
		t.Fatal("Boolean CQ should hold")
	}
	fo := FOQuery{F: Exists{Vars: []string{"x", "y"}, F: A("E", V("x"), V("y"))}}
	if !fo.Holds(ins) {
		t.Fatal("Boolean FO should hold")
	}
	empty := instance.New()
	if cq.Holds(empty) || fo.Holds(empty) {
		t.Fatal("nothing holds on the empty instance")
	}
}

func TestHoldsPanicsOnNonBoolean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Holds on a non-Boolean CQ must panic")
		}
	}()
	cq := CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}}
	cq.Holds(instance.New())
}

func TestConstantsExtraction(t *testing.T) {
	cq := CQ{
		Head:   []string{"x"},
		Atoms:  []Atom{A("E", V("x"), CN("k"))},
		Diseqs: []Diseq{{L: V("x"), R: CN("m")}},
	}
	got := Constants(cq)
	if len(got) != 2 {
		t.Fatalf("constants = %v", got)
	}
	u := NewUCQ(cq, CQ{Head: []string{"x"}, Atoms: []Atom{A("P", V("x"), CN("n"))}})
	if len(Constants(u)) != 3 {
		t.Fatalf("UCQ constants = %v", Constants(u))
	}
	fo := FOQuery{F: Eq{L: CN("z"), R: CN("z")}}
	if len(Constants(fo)) != 2 { // both sides counted; duplicates fine
		t.Fatalf("FO constants = %v", Constants(fo))
	}
}

func TestStringRenderings(t *testing.T) {
	cq := CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}, Diseqs: []Diseq{{L: V("x"), R: V("y")}}}
	if !strings.Contains(cq.String(), "!=") {
		t.Fatalf("CQ string: %q", cq.String())
	}
	u := NewUCQ(cq, cq)
	if !strings.Contains(u.String(), "∪") {
		t.Fatalf("UCQ string: %q", u.String())
	}
	fo := FOQuery{Vars: []string{"x"}, F: A("P", V("x"))}
	if !strings.Contains(fo.String(), "P(x)") {
		t.Fatalf("FO string: %q", fo.String())
	}
	if MaxIneq := u.MaxInequalitiesPerDisjunct(); MaxIneq != 1 {
		t.Fatalf("max inequalities = %d", MaxIneq)
	}
}

func TestNewUCQValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched head arities must panic")
		}
	}()
	NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("P", V("x"))}},
		CQ{Head: []string{"x", "y"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
	)
}
