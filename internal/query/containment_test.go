package query

import (
	"testing"
	"testing/quick"

	"repro/internal/instance"
)

func mustCQ(t testing.TB, head []string, atoms ...Atom) CQ {
	t.Helper()
	return CQ{Head: head, Atoms: atoms}
}

func TestContainedInBasics(t *testing.T) {
	// q1(x) :- E(x,y), E(y,z)   (2-step path)
	// q2(x) :- E(x,y)           (1-step)
	q1 := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")), A("E", V("y"), V("z")))
	q2 := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")))
	ok, err := ContainedIn(q1, q2)
	if err != nil || !ok {
		t.Fatalf("2-path ⊆ 1-step: %v %v", ok, err)
	}
	ok, err = ContainedIn(q2, q1)
	if err != nil || ok {
		t.Fatalf("1-step ⊄ 2-path: %v %v", ok, err)
	}
}

func TestEquivalentAndMinimize(t *testing.T) {
	// q(x) :- E(x,y), E(x,z) is equivalent to q(x) :- E(x,y).
	q := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")), A("E", V("x"), V("z")))
	min, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 1 {
		t.Fatalf("minimized to %d atoms, want 1: %v", len(min.Atoms), min)
	}
	eq, err := Equivalent(q, min)
	if err != nil || !eq {
		t.Fatalf("minimized query must be equivalent: %v %v", eq, err)
	}
}

func TestMinimizeKeepsNonRedundant(t *testing.T) {
	// The 2-path is already minimal.
	q := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")), A("E", V("y"), V("z")))
	min, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 2 {
		t.Fatalf("2-path is minimal, got %v", min)
	}
}

func TestMinimizeTriangleVsEdgeWithConstants(t *testing.T) {
	// q() :- E(a,y), E(y,a): constants block collapsing.
	q := CQ{Atoms: []Atom{A("E", CN("a"), V("y")), A("E", V("y"), CN("a"))}}
	min, err := Minimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Atoms) != 2 {
		t.Fatalf("constant round-trip is minimal, got %v", min)
	}
}

func TestContainedInErrors(t *testing.T) {
	withIneq := CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}, Diseqs: []Diseq{{L: V("x"), R: V("y")}}}
	plain := CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}}
	if _, err := ContainedIn(withIneq, plain); err == nil {
		t.Fatal("inequalities must be rejected")
	}
	if _, err := ContainedIn(plain, withIneq); err == nil {
		t.Fatal("inequalities must be rejected on the right too")
	}
	arity := CQ{Head: []string{"x", "y"}, Atoms: []Atom{A("E", V("x"), V("y"))}}
	if _, err := ContainedIn(plain, arity); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
}

func TestUCQContainment(t *testing.T) {
	u1 := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("z"))}},
	)
	u2 := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
		CQ{Head: []string{"x"}, Atoms: []Atom{A("P", V("x"))}},
	)
	ok, err := UCQContainedIn(u1, u2)
	if err != nil || !ok {
		t.Fatalf("u1 ⊆ u2: %v %v", ok, err)
	}
	ok, err = UCQContainedIn(u2, u1)
	if err != nil || ok {
		t.Fatalf("u2 ⊄ u1: %v %v", ok, err)
	}
}

// Property: containment decided via canonical instances agrees with
// evaluation containment on random small graphs.
func TestQuickContainmentSoundOnRandomGraphs(t *testing.T) {
	q1 := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")), A("E", V("y"), V("x")))
	q2 := mustCQ(t, []string{"x"}, A("E", V("x"), V("y")))
	contained, err := ContainedIn(q1, q2)
	if err != nil || !contained {
		t.Fatalf("2-cycle membership ⊆ out-edge: %v %v", contained, err)
	}
	nodes := []instance.Value{instance.Const("a"), instance.Const("b"), instance.Const("c")}
	f := func(adj uint16) bool {
		ins := instance.New()
		bit := 0
		for _, u := range nodes {
			for _, v := range nodes {
				if adj&(1<<bit) != 0 {
					ins.Add(instance.NewAtom("E", u, v))
				}
				bit++
			}
		}
		return q1.Answers(ins).SubsetOf(q2.Answers(ins))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Minimize always yields an equivalent query with no more atoms.
func TestQuickMinimizeEquivalent(t *testing.T) {
	shapes := []CQ{
		mustCQ(t, []string{"x"}, A("E", V("x"), V("y")), A("E", V("x"), V("z")), A("E", V("z"), V("w"))),
		mustCQ(t, []string{"x"}, A("E", V("x"), V("x"))),
		mustCQ(t, []string{"x", "y"}, A("E", V("x"), V("y")), A("E", V("x"), V("u")), A("E", V("v"), V("y"))),
		mustCQ(t, nil, A("E", V("x"), V("y")), A("E", V("y"), V("z")), A("E", V("u"), V("v"))),
	}
	for _, q := range shapes {
		min, err := Minimize(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if len(min.Atoms) > len(q.Atoms) {
			t.Fatalf("%v: minimization grew", q)
		}
		eq, err := Equivalent(q, min)
		if err != nil || !eq {
			t.Fatalf("%v: minimized %v not equivalent (%v)", q, min, err)
		}
	}
}

func TestMinimizeUCQ(t *testing.T) {
	// Disjunct 1 (2-path) ⊆ disjunct 2 (1-step): only the 1-step survives.
	u := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y")), A("E", V("y"), V("z"))}},
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y")), A("E", V("x"), V("w"))}},
	)
	min, err := MinimizeUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Disjuncts) != 1 {
		t.Fatalf("minimized to %d disjuncts: %v", len(min.Disjuncts), min)
	}
	// The surviving disjunct is itself minimized (the redundant atom drops).
	if len(min.Disjuncts[0].Atoms) != 1 {
		t.Fatalf("surviving disjunct not minimized: %v", min.Disjuncts[0])
	}
	// Minimization preserves equivalence.
	eq, err := UCQContainedIn(u, min)
	if err != nil || !eq {
		t.Fatalf("u ⊆ min: %v %v", eq, err)
	}
	eq, err = UCQContainedIn(min, u)
	if err != nil || !eq {
		t.Fatalf("min ⊆ u: %v %v", eq, err)
	}
}

func TestMinimizeUCQEquivalentDisjuncts(t *testing.T) {
	// Two equivalent disjuncts: exactly one survives.
	u := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("z"))}},
	)
	min, err := MinimizeUCQ(u)
	if err != nil || len(min.Disjuncts) != 1 {
		t.Fatalf("minimize equivalents: %v %v", min, err)
	}
	// Incomparable disjuncts both survive.
	u2 := NewUCQ(
		CQ{Head: []string{"x"}, Atoms: []Atom{A("P", V("x"))}},
		CQ{Head: []string{"x"}, Atoms: []Atom{A("E", V("x"), V("y"))}},
	)
	min2, err := MinimizeUCQ(u2)
	if err != nil || len(min2.Disjuncts) != 2 {
		t.Fatalf("incomparable disjuncts: %v %v", min2, err)
	}
}
