package sat

import (
	"testing"
	"testing/quick"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/score"
)

func TestSolveSimple(t *testing.T) {
	cases := []struct {
		f    CNF
		want bool
	}{
		{CNF{Vars: 1, Clauses: []Clause{{1}}}, true},
		{CNF{Vars: 1, Clauses: []Clause{{1}, {-1}}}, false},
		{CNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}, false},
		{CNF{Vars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}}}, true},
		{CNF{Vars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}}}, true},
		{CNF{Vars: 0, Clauses: nil}, true},
		{CNF{Vars: 1, Clauses: []Clause{{}}}, false}, // empty clause
	}
	for _, c := range cases {
		a, got := Solve(c.f)
		if got != c.want {
			t.Errorf("Solve(%v) = %v, want %v", c.f, got, c.want)
		}
		if got && !c.f.Satisfies(a) {
			t.Errorf("Solve(%v) returned non-satisfying assignment %v", c.f, a)
		}
	}
}

func TestSolveAgreesWithBrute(t *testing.T) {
	f := func(seed int64) bool {
		cnf := Random3CNF(4, 8, seed)
		_, got := Solve(cnf)
		return got == SolveBrute(cnf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (CNF{Vars: 2, Clauses: []Clause{{1, -2}}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CNF{Vars: 1, Clauses: []Clause{{2}}}).Validate(); err == nil {
		t.Fatal("literal beyond Vars must fail")
	}
	if err := (CNF{Vars: 1, Clauses: []Clause{{0}}}).Validate(); err == nil {
		t.Fatal("zero literal must fail")
	}
}

func TestReductionSettingShape(t *testing.T) {
	s := ReductionSetting()
	if !s.WeaklyAcyclic() {
		t.Fatal("reduction setting must be weakly acyclic")
	}
	if !s.RichlyAcyclic() {
		t.Fatal("Theorem 7.5 requires richly acyclic target dependencies")
	}
	q := ReductionQuery()
	if len(q.Diseqs) != 1 || len(q.Head) != 0 {
		t.Fatalf("query must be Boolean with one inequality: %v", q)
	}
}

func TestReductionChaseCoreShape(t *testing.T) {
	f := CNF{Vars: 2, Clauses: []Clause{{1, -2}}}
	s := ReductionSetting()
	src := SourceInstance(f)
	core, err := cwa.Minimal(s, src, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One P2 pair per variable and per clause; the pairs are rigid, so the
	// core keeps them all.
	if got := core.RelLen("P2"); got != 3 {
		t.Fatalf("P2 pairs = %d, want 3 (%v)", got, core)
	}
	if !score.IsCore(core) {
		t.Fatal("Minimal must return a core")
	}
	// The repeated-variable tgd bodies must not fire during the chase:
	// Cho has one fact per literal, BVal two per variable, nothing more.
	if core.RelLen("Cho") != 2 || core.RelLen("BVal") != 4 {
		t.Fatalf("unexpected chase result: %v", core)
	}
}

// The heart of Theorem 7.5: certain(q, S_φ) ⟺ φ unsatisfiable, validated
// against the DPLL baseline.
func TestReductionAgreesWithDPLL(t *testing.T) {
	hand := []CNF{
		{Vars: 1, Clauses: []Clause{{1}}},
		{Vars: 1, Clauses: []Clause{{1}, {-1}}},
		{Vars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}},
		{Vars: 2, Clauses: []Clause{{1, 2}, {-1, -2}}},
		{Vars: 3, Clauses: []Clause{{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}}},
	}
	for _, f := range hand {
		_, sat := Solve(f)
		unsat, err := CertainUnsat(f, chase.Options{})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if unsat == sat {
			t.Errorf("formula %v: certain=%v but sat=%v (must be complementary)", f, unsat, sat)
		}
	}
}

func TestReductionAgreesWithDPLLRandom(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		f := Random3CNF(3, 2+int(seed)%6, seed)
		_, sat := Solve(f)
		unsat, err := CertainUnsat(f, chase.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if unsat == sat {
			t.Errorf("seed %d (%v): certain=%v sat=%v", seed, f, unsat, sat)
		}
	}
}

// On a tiny formula, the structured search must agree with the fully
// generic valuation enumeration of □Q(Core).
func TestReductionAgreesWithGenericBox(t *testing.T) {
	// Kept tiny: the generic enumeration is |base|^nulls. The unsat side is
	// exercised at bench scale (experiment E2) and by the DPLL cross-checks.
	for _, f := range []CNF{
		{Vars: 1, Clauses: []Clause{{1}}},
		{Vars: 1, Clauses: []Clause{{-1}}},
	} {
		s := ReductionSetting()
		src := SourceInstance(f)
		core, err := cwa.Minimal(s, src, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		box, err := certain.Box(s, ReductionQuery(), core, certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		generic := box.Len() == 1 // Boolean query: one empty tuple iff certain
		structured, err := CertainUnsat(f, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if generic != structured {
			t.Errorf("formula %v: generic Box says certain=%v, structured says %v", f, generic, structured)
		}
	}
}

func TestRandom3CNFShape(t *testing.T) {
	f := Random3CNF(5, 10, 42)
	if f.Vars != 5 || len(f.Clauses) != 10 {
		t.Fatal("shape")
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause %v not ternary", c)
		}
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				t.Fatalf("duplicate variable in clause %v", c)
			}
			seen[l.Var()] = true
		}
	}
	// Reproducible.
	g := Random3CNF(5, 10, 42)
	if f.String() != g.String() {
		t.Fatal("same seed must give same formula")
	}
}
