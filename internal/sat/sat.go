// Package sat provides CNF formulas, a DPLL solver used as an independent
// baseline, and the reduction behind Theorem 7.5: a richly acyclic data
// exchange setting and a conjunctive query with a single inequality whose
// certain answers decide (the complement of) 3-SAT. The reduction witnesses
// the co-NP-hardness entries of Table 1's second and third columns.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a propositional literal: positive values are variables
// 1, 2, 3, …; negative values their negations. Zero is invalid.
type Literal int

// Var returns the literal's variable index (≥ 1).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Literal) Pos() bool { return l > 0 }

func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("¬x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Literal

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// CNF is a conjunction of clauses over variables 1..Vars.
type CNF struct {
	Vars    int
	Clauses []Clause
}

func (f CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Validate checks that every literal references a declared variable and no
// clause is empty or tautological beyond repair (empty clauses are allowed —
// they make the formula unsatisfiable).
func (f CNF) Validate() error {
	for i, c := range f.Clauses {
		for _, l := range c {
			if l == 0 {
				return fmt.Errorf("sat: zero literal in clause %d", i)
			}
			if l.Var() > f.Vars {
				return fmt.Errorf("sat: literal %v exceeds variable count %d", l, f.Vars)
			}
		}
	}
	return nil
}

// Assignment maps variable indexes (1-based) to truth values; missing
// variables are unassigned.
type Assignment map[int]bool

// Satisfies reports whether the (total) assignment satisfies the formula.
func (f CNF) Satisfies(a Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if v, assigned := a[l.Var()]; assigned && v == l.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Solve decides satisfiability with DPLL (unit propagation + branch on the
// first unassigned variable) and returns a satisfying assignment if one
// exists. It is the independent baseline against which the data exchange
// reduction is validated.
func Solve(f CNF) (Assignment, bool) {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	a := make(Assignment, f.Vars)
	if !dpll(f, a) {
		return nil, false
	}
	// Complete the assignment for unconstrained variables.
	for v := 1; v <= f.Vars; v++ {
		if _, ok := a[v]; !ok {
			a[v] = false
		}
	}
	return a, true
}

func dpll(f CNF, a Assignment) bool {
	// Unit propagation.
	for {
		unit := 0
		unitVal := false
		conflict := false
		for _, c := range f.Clauses {
			unassigned := 0
			var lastLit Literal
			satisfied := false
			for _, l := range c {
				if v, ok := a[l.Var()]; ok {
					if v == l.Pos() {
						satisfied = true
						break
					}
					continue
				}
				unassigned++
				lastLit = l
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				conflict = true
				break
			}
			if unassigned == 1 && unit == 0 {
				unit = lastLit.Var()
				unitVal = lastLit.Pos()
			}
		}
		if conflict {
			return false
		}
		if unit == 0 {
			break
		}
		a[unit] = unitVal
	}
	// Pick a branch variable.
	branch := 0
	for v := 1; v <= f.Vars; v++ {
		if _, ok := a[v]; !ok {
			branch = v
			break
		}
	}
	if branch == 0 {
		return f.Satisfies(a)
	}
	saved := cloneAssignment(a)
	for _, val := range []bool{true, false} {
		a[branch] = val
		if dpll(f, a) {
			return true
		}
		restoreAssignment(a, saved)
	}
	return false
}

func cloneAssignment(a Assignment) Assignment {
	cp := make(Assignment, len(a))
	for k, v := range a {
		cp[k] = v
	}
	return cp
}

func restoreAssignment(a, saved Assignment) {
	for k := range a {
		if _, ok := saved[k]; !ok {
			delete(a, k)
		}
	}
	for k, v := range saved {
		a[k] = v
	}
}

// SolveBrute decides satisfiability by trying all 2^Vars assignments — the
// ground truth for property tests of Solve.
func SolveBrute(f CNF) bool {
	n := f.Vars
	if n > 24 {
		panic("sat: SolveBrute limited to 24 variables")
	}
	for mask := 0; mask < 1<<n; mask++ {
		a := make(Assignment, n)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

// Random3CNF generates a random 3-CNF with the given numbers of variables
// and clauses, reproducibly from the seed. Clauses use three distinct
// variables, so vars must be at least 3.
func Random3CNF(vars, clauses int, seed int64) CNF {
	if vars < 3 {
		panic("sat: Random3CNF needs at least 3 variables for distinct-variable clauses")
	}
	rng := rand.New(rand.NewSource(seed))
	f := CNF{Vars: vars}
	for i := 0; i < clauses; i++ {
		var c Clause
		used := map[int]bool{}
		for len(c) < 3 {
			v := rng.Intn(vars) + 1
			if used[v] {
				continue
			}
			used[v] = true
			l := Literal(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
