package sat

import (
	"fmt"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/query"
)

// This file implements the reduction behind Theorem 7.5: a fixed data
// exchange setting with richly acyclic target dependencies and a Boolean
// conjunctive query with a single inequality whose certain answers decide
// UNSAT.
//
// Encoding. Every variable v and every clause c receives a pair of nulls
// via P2(name, ⊥, ⊥'). The query
//
//	q() :- P2(n, x, y), x != y
//
// is false in a possible world exactly when every pair is collapsed to a
// single value. The target dependencies constrain collapsed worlds:
//
//	t1: P2(c,x,x) & Cho(c,p) -> Cho(c,x)   (a collapsed clause pair must
//	     name an existing choice — its value is forced into the positions
//	     of c, because the world's only Cho-atoms are the constant ones)
//	t2: P2(v,x,x) & BVal(v,b) -> BVal(v,x) (a collapsed variable pair must
//	     take a boolean value 0/1, for the same reason)
//	e1: P2(c,x,x) & Lit(c,x,v,s) & P2(v,y,y) -> y = s
//	     (the literal at the chosen position must be true: the variable's
//	     value must equal the literal's sign)
//
// The bodies of t1/t2/e1 use a repeated variable (x,x), so they never match
// the chase result itself — only worlds that collapse a pair. Hence a legal
// world in which q is false encodes a choice of one true literal per clause
// under a boolean assignment, i.e. a satisfying assignment; and every
// satisfying assignment yields such a world. Therefore
//
//	certain(q, S_φ) = true  ⟺  φ is unsatisfiable.

// ReductionSetting returns the fixed setting D of the Theorem 7.5
// reduction. It is richly acyclic.
func ReductionSetting() *dependency.Setting {
	s, err := parser.ParseSetting(`
source SVar/1, SClause/1, SLit/4.
target P2/3, Lit/4, Cho/2, BVal/2.
st:
  st1: SVar(v) -> exists x,y : P2(v,x,y).
  st2: SVar(v) -> BVal(v,'0') & BVal(v,'1').
  st3: SClause(c) -> exists x,y : P2(c,x,y).
  st4: SLit(c,p,v,s) -> Lit(c,p,v,s).
  st5: SLit(c,p,v,s) -> Cho(c,p).
target-deps:
  t1: P2(c,x,x) & Cho(c,p) -> Cho(c,x).
  t2: P2(v,x,x) & BVal(v,b) -> BVal(v,x).
  e1: P2(c,x,x) & Lit(c,x,v,s) & P2(v,y,y) -> y = s.
`)
	if err != nil {
		panic("sat: reduction setting must parse: " + err.Error())
	}
	return s
}

// varName and clauseName build the source constants for variables/clauses.
func varName(i int) instance.Value    { return instance.Const(fmt.Sprintf("v%d", i)) }
func clauseName(i int) instance.Value { return instance.Const(fmt.Sprintf("c%d", i)) }
func posName(p int) instance.Value    { return instance.Const(fmt.Sprintf("p%d", p)) }
func signName(pos bool) instance.Value {
	if pos {
		return instance.Const("1")
	}
	return instance.Const("0")
}

// SourceInstance encodes the CNF formula as a source instance for the
// reduction setting.
func SourceInstance(f CNF) *instance.Instance {
	src := instance.New()
	for v := 1; v <= f.Vars; v++ {
		src.Add(instance.NewAtom("SVar", varName(v)))
	}
	for ci, c := range f.Clauses {
		src.Add(instance.NewAtom("SClause", clauseName(ci+1)))
		for pi, l := range c {
			src.Add(instance.NewAtom("SLit",
				clauseName(ci+1), posName(pi+1), varName(l.Var()), signName(l.Pos())))
		}
	}
	return src
}

// ReductionQuery returns the Boolean conjunctive query with one inequality.
func ReductionQuery() query.CQ {
	q, err := parser.ParseCQ("q() :- P2(n,x,y), x != y.")
	if err != nil {
		panic("sat: reduction query must parse: " + err.Error())
	}
	return q
}

// CertainUnsat decides whether q is a certain answer for the encoded
// formula — by the reduction, whether the formula is unsatisfiable. It
// builds the minimal CWA-solution with the real pipeline and then searches
// the collapsed worlds directly: a world in which q is false must collapse
// every pair, variable pairs are forced to booleans and clause pairs to
// positions (tgds t1/t2), so the search space is exactly
// assignments × choices, checked against the real Σt-satisfaction and
// query evaluation. Exponential — the problem is co-NP-complete
// (Theorem 7.5).
func CertainUnsat(f CNF, opt chase.Options) (bool, error) {
	s := ReductionSetting()
	src := SourceInstance(f)
	core, err := cwa.Minimal(s, src, opt)
	if err != nil {
		return false, err
	}
	q := ReductionQuery()

	// Pair nulls per name: P2(n, x, y).
	type pair struct{ a, b instance.Value }
	pairs := make(map[instance.Value]pair)
	core.Tuples("P2", func(args []instance.Value) bool {
		pairs[args[0]] = pair{a: args[1], b: args[2]}
		return true
	})

	// Candidate collapsed values per pair.
	candidates := make(map[instance.Value][]instance.Value)
	for v := 1; v <= f.Vars; v++ {
		candidates[varName(v)] = []instance.Value{signName(false), signName(true)}
	}
	for ci, c := range f.Clauses {
		var ps []instance.Value
		for pi := range c {
			ps = append(ps, posName(pi+1))
		}
		candidates[clauseName(ci+1)] = ps
	}

	names := make([]instance.Value, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if instance.Less(names[j], names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}

	valuation := make(map[instance.Value]instance.Value)
	var found bool
	var rec func(i int)
	rec = func(i int) {
		if found {
			return
		}
		if i == len(names) {
			world := core.Map(valuation)
			if certain.SatisfiesTargetDeps(s, world) && !q.Holds(world) {
				found = true
			}
			return
		}
		n := names[i]
		p := pairs[n]
		for _, val := range candidates[n] {
			valuation[p.a] = val
			valuation[p.b] = val
			rec(i + 1)
		}
		delete(valuation, p.a)
		delete(valuation, p.b)
	}
	rec(0)
	// q is certain iff no legal world makes it false.
	return !found, nil
}
