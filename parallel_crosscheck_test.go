package repro_test

import (
	"errors"
	"testing"

	"repro"
	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/genwl"
)

// TestParallelWorkerCrosscheck is the worker-invariance property test for
// the parallel evaluation engine: on randomly generated richly acyclic
// settings, Box, Diamond and CWA-solution enumeration must produce
// identical results with 1 and 4 workers. The ci target runs it under
// -race, which also exercises the concurrent paths for data races.
func TestParallelWorkerCrosscheck(t *testing.T) {
	q, err := repro.ParseUCQ("q(x) :- L2(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	budget := chase.Options{MaxSteps: 50000}
	for seed := int64(0); seed < 6; seed++ {
		s := genwl.RandomRichlyAcyclic(seed, seed%3 == 0)
		src := genwl.RandomLayeredSource(4, seed*11)
		core, err := cwa.Minimal(s, src, budget)
		if err != nil {
			if chase.IsEgdFailure(err) {
				continue // no CWA-solution for this seed
			}
			t.Fatalf("seed %d: %v", seed, err)
		}

		// MaxNulls keeps the |base|^nulls valuation spaces small enough for a
		// unit test; cores over the cap are skipped, not failed.
		seqOpt := certain.Options{Workers: 1, Chase: budget, MaxNulls: 4}
		parOpt := certain.Options{Workers: 4, Chase: budget, MaxNulls: 4}
		boxSeq, err := certain.Box(s, q, core, seqOpt)
		if err == nil {
			diaSeq, err := certain.Diamond(s, q, core, seqOpt)
			if err != nil {
				t.Fatalf("seed %d: Diamond: %v", seed, err)
			}
			boxPar, err := certain.Box(s, q, core, parOpt)
			if err != nil {
				t.Fatalf("seed %d: Box(4): %v", seed, err)
			}
			diaPar, err := certain.Diamond(s, q, core, parOpt)
			if err != nil {
				t.Fatalf("seed %d: Diamond(4): %v", seed, err)
			}
			if !boxSeq.Equal(boxPar) {
				t.Errorf("seed %d: Box differs: %v vs %v", seed, boxSeq, boxPar)
			}
			if !diaSeq.Equal(diaPar) {
				t.Errorf("seed %d: Diamond differs: %v vs %v", seed, diaSeq, diaPar)
			}
		} else if !errors.Is(err, certain.ErrTooManyNulls) {
			t.Fatalf("seed %d: Box: %v", seed, err)
		}

		enumOpt := cwa.EnumOptions{MaxStates: 10000, ChaseOptions: budget}
		enumOpt.Workers = 1
		seq, errSeq := cwa.Enumerate(s, src, enumOpt)
		enumOpt.Workers = 4
		par, errPar := cwa.Enumerate(s, src, enumOpt)
		if errors.Is(errSeq, cwa.ErrEnumerationTruncated) || errors.Is(errPar, cwa.ErrEnumerationTruncated) {
			continue // which states a truncated search reaches is order-dependent
		}
		if errSeq != nil || errPar != nil {
			t.Fatalf("seed %d: Enumerate: %v / %v", seed, errSeq, errPar)
		}
		if len(seq) != len(par) {
			t.Errorf("seed %d: Enumerate found %d vs %d solutions", seed, len(seq), len(par))
			continue
		}
		for i := range seq {
			if seq[i].String() != par[i].String() {
				t.Errorf("seed %d: solution %d differs:\n%v\n%v", seed, i, seq[i], par[i])
			}
		}
	}
}

// TestAnswersWorkerCrosscheckEgdOnly covers all four semantics on the
// egd-only Table 1 family, where every semantics has a characterisation and
// none falls back to the exponential by-definition path.
func TestAnswersWorkerCrosscheckEgdOnly(t *testing.T) {
	s := genwl.EgdOnly()
	q, err := repro.ParseUCQ("q(x,y) :- F(x,y).")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		src := genwl.EgdOnlySource(6, true, seed)
		for _, sem := range []certain.Semantics{
			certain.CertainCap, certain.CertainCup, certain.MaybeCap, certain.MaybeCup,
		} {
			seq, err1 := certain.Answers(s, q, src, sem, certain.Options{Workers: 1})
			par, err2 := certain.Answers(s, q, src, sem, certain.Options{Workers: 4})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d %v: error disagreement: %v vs %v", seed, sem, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !seq.Equal(par) {
				t.Errorf("seed %d %v: %v vs %v", seed, sem, seq, par)
			}
		}
	}
}
