GO ?= go

# Output file and optional text baseline for bench-json (see cmd/benchjson).
BENCH_OUT ?= BENCH_2.json
BENCH_BASELINE ?=

.PHONY: all build vet vet-shadow test race race-server serve-smoke store-smoke cluster-smoke membership-smoke bench-smoke bench-json bench-incr bench-columnar bench-columnar-smoke bench-enum bench-enum-smoke bench-store bench-store-smoke bench-cluster bench-cluster-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Variable-shadowing analysis. The shadow analyzer ships separately from the
# toolchain; when the binary is absent we skip rather than fetch it (CI runs
# offline). Install with:
#   go install golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@latest
vet-shadow:
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./...; \
	else \
		echo "vet-shadow: shadow analyzer not installed, skipping"; \
	fi

test:
	$(GO) test ./...

# The parallel evaluation paths (certain.ForEachRep, cwa.Enumerate,
# cwa.Incomparable) are exercised under the race detector; the
# worker-invariance crosscheck tests double as race workloads.
race:
	$(GO) test -race ./...

# Focused race pass over the server stack: the admission gate, the LRU
# caches, the registry's single-flight memos, and the metrics scrape-during-
# enumeration workload.
race-server:
	$(GO) test -race -count=1 ./internal/server/... ./internal/status/... ./internal/metrics/...

# Start dxserver on a loopback port, fire a scripted request burst through
# the Go client (register, chase, core, certain twice to hit the result
# cache, enum, metrics, health), verify every response, and exit.
serve-smoke:
	$(GO) run ./cmd/dxserver -smoke

# One iteration of every benchmark: catches bit-rot in the bench targets
# without waiting for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full benchmark run converted to JSON (the perf trajectory: BENCH_<pr>.json
# is committed per perf PR). Set BENCH_BASELINE to a saved `go test -bench`
# text output to embed before/after numbers and speedup ratios.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson $(if $(BENCH_BASELINE),-before $(BENCH_BASELINE)) \
		> $(BENCH_OUT)

# Incremental-maintenance benchmarks: the engine's delta chase
# (single-tuple inserts, delete/re-insert round-trips) against a full
# re-chase of the grown source, on the quickstart (Example 2.1) and genwl
# (existential-chain) workloads. Committed as BENCH_5.json; compare the
# delta and full rows per workload for the speedup.
BENCH_INCR_OUT ?= BENCH_5.json
bench-incr:
	$(GO) test -run '^$$' -bench 'BenchmarkMutation' -benchmem ./internal/incr/ \
		| $(GO) run ./cmd/benchjson > $(BENCH_INCR_OUT)

# Columnar-instance benchmark gate: the hot paths the columnar refactor
# targets (AlphaChase, CWASolution, the Enumerate benches, incr inserts),
# diffed against the committed pre-columnar baseline (bench/pr6_baseline.txt,
# the map-of-relations storage before PR 6). Committed as BENCH_6.json.
BENCH_COLUMNAR_OUT ?= BENCH_6.json
BENCH_COLUMNAR_BASELINE ?= bench/pr6_baseline.txt
BENCH_COLUMNAR_PAT := BenchmarkAlphaChase|BenchmarkCWASolution|BenchmarkEnumerate_Workers|BenchmarkExample53_Enumeration
bench-columnar:
	{ $(GO) test -run '^$$' -bench '$(BENCH_COLUMNAR_PAT)' -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMutationInsert' -benchmem ./internal/incr/ ; } \
		| $(GO) run ./cmd/benchjson -before $(BENCH_COLUMNAR_BASELINE) \
		> $(BENCH_COLUMNAR_OUT)

# One-iteration pass over the same benches: ci proves the gate itself still
# runs (bench code and baseline parse) without paying for real timings, so
# future PRs can't silently bit-rot the instance-layer benchmarks.
bench-columnar-smoke:
	{ $(GO) test -run '^$$' -bench '$(BENCH_COLUMNAR_PAT)' -benchtime 1x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkMutationInsert' -benchtime 1x ./internal/incr/ ; } \
		| $(GO) run ./cmd/benchjson -before $(BENCH_COLUMNAR_BASELINE) \
		> /dev/null

# Enumeration benchmark gate: the paths the incremental universality check
# targets (the Enumerate walk and the core computation), diffed against the
# committed pre-incremental baseline (bench/pr7_baseline.txt, captured before
# PR 7's hom.Search.Extend / arc-consistency prefilter). Committed as
# BENCH_7.json.
BENCH_ENUM_OUT ?= BENCH_7.json
BENCH_ENUM_BASELINE ?= bench/pr7_baseline.txt
BENCH_ENUM_PAT := BenchmarkEnumerate_Workers|BenchmarkExample53_Enumeration|BenchmarkCWASolution_WeaklyAcyclic|BenchmarkCore_Blocks|BenchmarkCore_Naive
bench-enum:
	$(GO) test -run '^$$' -bench '$(BENCH_ENUM_PAT)' -benchmem . \
		| $(GO) run ./cmd/benchjson -before $(BENCH_ENUM_BASELINE) \
		> $(BENCH_ENUM_OUT)

# One-iteration pass over the same benches, like bench-columnar-smoke: keeps
# the gate runnable (bench code and baseline parse) without real timings.
bench-enum-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_ENUM_PAT)' -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -before $(BENCH_ENUM_BASELINE) \
		> /dev/null

# Durable-store smoke (fsync off): register + mutate against a temp-dir
# store, clean restart (zero WAL replay, identical answers, base_version
# conflict preserved), crash restart (WAL tail replayed). See
# cmd/dxserver -smoke-store.
store-smoke:
	$(GO) run ./cmd/dxserver -smoke-store

# Cluster smoke: a three-node loopback cluster — register through one node,
# byte-identical reads through every entry, replicated-cache revalidation,
# optimistic-concurrency conflicts through non-owners, ring-consistent
# health. See cmd/dxserver -smoke-cluster.
cluster-smoke:
	$(GO) run ./cmd/dxserver -smoke-cluster

# Membership smoke: a three-node cluster under continuous traffic grows to
# four (live join with scenario handoff) and shrinks back by drain-leave —
# zero failed requests, and exactly the scenarios whose ring owner changed
# transferred. See cmd/dxserver -smoke-membership.
membership-smoke:
	$(GO) run ./cmd/dxserver -smoke-membership

# Durability benchmarks: cold-start recovery over a 10k-scenario genwl
# catalog (WAL-only vs snapshot-backed), the cold Load a paged query pays,
# the WAL append a registration pays before its 2xx, and paged vs resident
# query latency through the registry. Committed as BENCH_8.json.
BENCH_STORE_OUT ?= BENCH_8.json
BENCH_STORE_PAT := BenchmarkColdStart10k|BenchmarkLoadCold|BenchmarkWALAppendRegister
BENCH_STORE_SRV_PAT := BenchmarkQueryResident|BenchmarkQueryPaged
bench-store:
	{ $(GO) test -run '^$$' -bench '$(BENCH_STORE_PAT)' -benchmem ./internal/store/ ; \
	  $(GO) test -run '^$$' -bench '$(BENCH_STORE_SRV_PAT)' -benchmem ./internal/server/ ; } \
		| $(GO) run ./cmd/benchjson > $(BENCH_STORE_OUT)

# One-iteration pass over the same benches: keeps the gate runnable without
# real timings.
bench-store-smoke:
	{ $(GO) test -run '^$$' -bench '$(BENCH_STORE_PAT)' -benchtime 1x ./internal/store/ ; \
	  $(GO) test -run '^$$' -bench '$(BENCH_STORE_SRV_PAT)' -benchtime 1x ./internal/server/ ; } \
		| $(GO) run ./cmd/benchjson > /dev/null

# Cluster benchmarks: scenario throughput 1 vs 4 nodes on the genwl chain
# working set (the capacity-scaling demonstration; compare the nodes=1 and
# nodes=4 rows), plus the group-commit WAL appends diffed against the
# committed pre-group-commit baseline (bench/pr9_wal_baseline.txt).
# Committed as BENCH_9.json.
BENCH_CLUSTER_OUT ?= BENCH_9.json
BENCH_CLUSTER_BASELINE ?= bench/pr9_wal_baseline.txt
bench-cluster:
	{ $(GO) test -run '^$$' -bench 'BenchmarkClusterThroughput' -benchmem ./internal/server/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkWALAppendFsyncAlways' -benchmem ./internal/store/ ; } \
		| $(GO) run ./cmd/benchjson -before $(BENCH_CLUSTER_BASELINE) \
		> $(BENCH_CLUSTER_OUT)

# One-iteration pass over the same benches: keeps the gate runnable without
# real timings.
bench-cluster-smoke:
	{ $(GO) test -run '^$$' -bench 'BenchmarkClusterThroughput' -benchtime 1x ./internal/server/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkWALAppendFsyncAlways' -benchtime 1x ./internal/store/ ; } \
		| $(GO) run ./cmd/benchjson -before $(BENCH_CLUSTER_BASELINE) \
		> /dev/null

ci: vet vet-shadow build race race-server serve-smoke store-smoke cluster-smoke membership-smoke bench-smoke bench-columnar-smoke bench-enum-smoke bench-store-smoke bench-cluster-smoke
