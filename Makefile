GO ?= go

.PHONY: all build vet test race bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel evaluation paths (certain.ForEachRep, cwa.Enumerate,
# cwa.Incomparable) are exercised under the race detector; the
# worker-invariance crosscheck tests double as race workloads.
race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the bench targets
# without waiting for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: vet build race bench-smoke
