// Command experiments runs the full reproduction suite E1–E12 (see
// DESIGN.md) and prints a paper-vs-measured report, as an aligned text
// table by default or as markdown with -md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	md := flag.Bool("md", false, "emit a markdown table")
	showMetrics := flag.Bool("metrics", false, "append the evaluation-counter table")
	flag.Parse()
	results := harness.RunAll()
	if *md {
		fmt.Print(harness.MarkdownReport(results))
	} else {
		fmt.Print(harness.Report(results))
	}
	if *showMetrics {
		fmt.Println()
		fmt.Print(harness.MetricsReport())
	}
	for _, r := range results {
		if !r.OK {
			fmt.Fprintf(os.Stderr, "experiment %s failed\n", r.ID)
			os.Exit(1)
		}
	}
}
