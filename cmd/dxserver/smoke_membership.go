package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

// runMembershipSmoke is the dynamic-membership drill behind
// `make membership-smoke`: boot a three-node loopback cluster, load it
// with scenarios and continuous traffic, join a fourth node live, then
// drain one member away — all while requiring zero failed requests and
// that exactly the scenarios whose ring owner changed were transferred.
func runMembershipSmoke(cfg server.Config) error {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  ok: %s\n", name)
		return nil
	}

	const setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`

	// Three static members on pre-bound loopback listeners.
	const n = 3
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	srvs := make([]*server.Server, n)
	clients := make([]*client.Client, n)
	for i, l := range listeners {
		cl, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers})
		if err != nil {
			return err
		}
		ncfg := cfg
		ncfg.Cluster = cl
		srvs[i] = server.New(ncfg)
		hs := &http.Server{Handler: srvs[i]}
		go hs.Serve(l)
		defer hs.Close()
		clients[i] = client.New(peers[i])
	}

	// Load: two dozen distinct scenarios scattered over the ring.
	const k = 24
	ids := make([]string, 0, k)
	if err := step(fmt.Sprintf("register %d scenarios through rotating entries", k), func() error {
		for i := 0; i < k; i++ {
			src := fmt.Sprintf("M(a%d,b%d). N(a%d,b%d). N(a%d,c%d).", i, i, i, i, i, i)
			info, err := clients[i%n].Register(ctx, api.RegisterRequest{
				Name: fmt.Sprintf("mem%02d", i), Setting: setting, Source: src,
			})
			if err != nil {
				return err
			}
			ids = append(ids, info.ID)
		}
		return nil
	}); err != nil {
		return err
	}

	// Continuous traffic through every static entry: a reader and a writer
	// with read-your-writes checks. Any error fails the smoke.
	var (
		mu       sync.Mutex
		firstErr error
		requests int
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	count := func() {
		mu.Lock()
		requests++
		mu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := clients[i%n].Scenario(ctx, ids[i%k]); err != nil {
				fail(fmt.Errorf("read %s: %w", ids[i%k], err))
				return
			}
			count()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[i%k]
			res, err := clients[(i+1)%n].Insert(ctx, id, api.MutateRequest{
				Tuples: fmt.Sprintf("M(w%d,w%d).", i, i+1),
			})
			if err != nil {
				fail(fmt.Errorf("write to %s: %w", id, err))
				return
			}
			count()
			got, err := clients[(i+2)%n].Scenario(ctx, id)
			if err != nil || got.Version < res.Version {
				fail(fmt.Errorf("read-your-writes on %s: acked %d, read %d (%v)", id, res.Version, got.Version, err))
				return
			}
			count()
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// Join a fourth node while the traffic runs.
	var joinerURL string
	var joinerSrv *server.Server
	var joinerCli *client.Client
	before := metrics.Read()
	if err := step("join a fourth node under traffic", func() error {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		joinerURL = "http://" + l.Addr().String()
		jc, err := cluster.NewJoining(joinerURL, 0, 0)
		if err != nil {
			return err
		}
		jcfg := cfg
		jcfg.Cluster = jc
		joinerSrv = server.New(jcfg)
		hs := &http.Server{Handler: joinerSrv}
		go hs.Serve(l)
		joinerCli = client.New(joinerURL)
		return joinerSrv.JoinCluster(ctx, peers[0])
	}); err != nil {
		return err
	}
	grown := append(append([]string(nil), peers...), joinerURL)
	movedJoin := movedKeys(ids, peers, grown)

	if err := step("all four members committed epoch 2", func() error {
		for i, c := range append(append([]*client.Client(nil), clients...), joinerCli) {
			h, err := c.Health(ctx)
			if err != nil {
				return fmt.Errorf("member %d: %w", i, err)
			}
			if h.Cluster == nil || h.Cluster.Epoch != 2 {
				return fmt.Errorf("member %d reports %+v, want epoch 2", i, h.Cluster)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("only the scenarios whose owner changed were transferred", func() error {
		d := metrics.Read().Diff(before)
		if got := d["membership_transfers"]; got != int64(len(movedJoin)) {
			return fmt.Errorf("transferred %d scenarios, ring moved %d", got, len(movedJoin))
		}
		if len(movedJoin) == 0 || len(movedJoin) >= k {
			return fmt.Errorf("degenerate split: %d/%d moved", len(movedJoin), k)
		}
		return nil
	}); err != nil {
		return err
	}

	// Drain one original member away, still under traffic.
	leaver := 2
	shrunk := []string{peers[0], peers[1], joinerURL}
	movedLeave := movedKeys(ids, grown, shrunk)
	before = metrics.Read()
	if err := step("drain-leave one member under traffic", func() error {
		return srvs[leaver].LeaveCluster(ctx)
	}); err != nil {
		return err
	}
	if err := step("leaver handed off exactly what it owned", func() error {
		d := metrics.Read().Diff(before)
		if got := d["membership_transfers"]; got != int64(len(movedLeave)) {
			return fmt.Errorf("transferred %d scenarios, leaver owned %d", got, len(movedLeave))
		}
		return nil
	}); err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	if err := step("zero failed requests across both transitions", func() error {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return firstErr
		}
		if requests == 0 {
			return fmt.Errorf("traffic generator issued no requests")
		}
		fmt.Printf("    (%d requests)\n", requests)
		return nil
	}); err != nil {
		return err
	}

	return step("every scenario answers through every surviving entry", func() error {
		entries := []*client.Client{clients[0], clients[1], joinerCli, clients[leaver]}
		for _, id := range ids {
			for i, c := range entries {
				if _, err := c.Scenario(ctx, id); err != nil {
					return fmt.Errorf("%s via entry %d: %w", id, i, err)
				}
			}
		}
		return nil
	})
}

// movedKeys returns the ids whose consistent-hash owner differs between
// the two peer lists — the set a transition between them must transfer.
func movedKeys(ids, oldPeers, newPeers []string) []string {
	oldRing := cluster.NewRing(oldPeers, 0)
	newRing := cluster.NewRing(newPeers, 0)
	var moved []string
	for _, id := range ids {
		if oldRing.Owner(id) != newRing.Owner(id) {
			moved = append(moved, id)
		}
	}
	return moved
}
