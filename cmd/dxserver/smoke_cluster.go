package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
)

// runClusterSmoke is the three-node loopback cluster drill behind
// `make cluster-smoke`: register through one node, read through every
// node (byte-identical bodies), mutate through a non-owner with optimistic
// concurrency (the stale base 409s through any entry), and confirm the
// replicated result cache revalidates rather than serving stale bodies.
func runClusterSmoke(cfg server.Config) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  ok: %s\n", name)
		return nil
	}

	// Three nodes on loopback listeners; the peer list must exist before
	// any member starts, so the listeners are bound first.
	const n = 3
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = l
		peers[i] = "http://" + l.Addr().String()
	}
	clients := make([]*client.Client, n)
	for i, l := range listeners {
		cl, err := cluster.New(cluster.Config{Self: peers[i], Peers: peers})
		if err != nil {
			return err
		}
		ncfg := cfg
		ncfg.Cluster = cl
		hs := &http.Server{Handler: server.New(ncfg)}
		go hs.Serve(l)
		defer hs.Close()
		clients[i] = client.New(peers[i])
	}

	const setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`
	const source = `M(a,b). N(a,b). N(a,c).`

	var info api.ScenarioInfo
	if err := step("register through node 0 (content-pinned name)", func() error {
		var err error
		info, err = clients[0].Register(ctx, api.RegisterRequest{Setting: setting, Source: source})
		if err != nil {
			return err
		}
		if !strings.HasPrefix(info.ID, "c") {
			return fmt.Errorf("expected a content-pinned name, got %q", info.ID)
		}
		return nil
	}); err != nil {
		return err
	}

	rawChase := func(base string) (int, http.Header, []byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/chase",
			strings.NewReader(fmt.Sprintf(`{"scenario":%q}`, info.ID)))
		if err != nil {
			return 0, nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, b, err
	}

	var first []byte
	if err := step("chase byte-identical through every entry", func() error {
		for i, p := range peers {
			code, _, b, err := rawChase(p)
			if err != nil {
				return err
			}
			if code != http.StatusOK {
				return fmt.Errorf("entry %d: status %d: %s", i, code, b)
			}
			if i == 0 {
				first = b
			} else if !bytes.Equal(b, first) {
				return fmt.Errorf("entry %d body differs:\n%s\nvs\n%s", i, b, first)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("repeated forwarded read is a cluster cache hit", func() error {
		// Find an entry the ring does not map the scenario to, read twice,
		// and require the second read to be revalidated from the replica.
		owner := cluster.NewRing(peers, 0).Owner(info.ID)
		for i, p := range peers {
			if p == owner {
				continue
			}
			if _, _, _, err := rawChase(p); err != nil {
				return err
			}
			code, hdr, b, err := rawChase(p)
			if err != nil || code != http.StatusOK {
				return fmt.Errorf("revalidating read via %d: %d %v", i, code, err)
			}
			if hdr.Get("X-Cache") != "cluster-hit" {
				return fmt.Errorf("X-Cache = %q, want cluster-hit", hdr.Get("X-Cache"))
			}
			if !bytes.Equal(b, first) {
				return fmt.Errorf("replica body differs from owner body")
			}
			return nil
		}
		return fmt.Errorf("no non-owner entry found")
	}); err != nil {
		return err
	}

	var fresh uint64
	if err := step("conditional mutation through a non-owner entry", func() error {
		res, err := clients[1].Insert(ctx, info.ID, api.MutateRequest{
			Tuples: "M(c,d).", BaseVersion: info.Version,
		})
		if err != nil {
			return err
		}
		fresh = res.Version
		return nil
	}); err != nil {
		return err
	}
	if err := step("stale base_version 409s through every entry", func() error {
		for i := range clients {
			var apiErr *client.APIError
			_, err := clients[i].Insert(ctx, info.ID, api.MutateRequest{
				Tuples: "M(e,f).", BaseVersion: info.Version,
			})
			if !errors.As(err, &apiErr) || apiErr.Code != "conflict" || apiErr.StatusCode != http.StatusConflict {
				return fmt.Errorf("entry %d: want conflict/409, got %v", i, err)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("post-mutation reads agree and differ from pre-mutation", func() error {
		var after []byte
		for i, p := range peers {
			code, _, b, err := rawChase(p)
			if err != nil || code != http.StatusOK {
				return fmt.Errorf("entry %d: %d %v", i, code, err)
			}
			if i == 0 {
				after = b
			} else if !bytes.Equal(b, after) {
				return fmt.Errorf("entry %d post-mutation body differs", i)
			}
		}
		if bytes.Equal(after, first) {
			return fmt.Errorf("mutation did not change the chase result")
		}
		_ = fresh
		return nil
	}); err != nil {
		return err
	}

	return step("healthz reports the ring; metricsz counts forwards", func() error {
		h, err := clients[2].Health(ctx)
		if err != nil {
			return err
		}
		if h.Cluster == nil || h.Cluster.Role != "node" || len(h.Cluster.Peers) != n {
			return fmt.Errorf("cluster health %+v", h.Cluster)
		}
		for _, p := range h.Cluster.Peers {
			if !p.Reachable || p.RingVersion != h.Cluster.RingVersion {
				return fmt.Errorf("peer %+v disagrees with ring %s", p, h.Cluster.RingVersion)
			}
		}
		text, err := clients[0].Metrics(ctx)
		if err != nil {
			return err
		}
		for _, name := range []string{"cluster_forwards", "cluster_forward_errors", "cluster_cache_hits"} {
			if !strings.Contains(text, name) {
				return fmt.Errorf("metricsz missing %s", name)
			}
		}
		return nil
	})
}
