// Command dxserver runs the long-running data-exchange service: an
// HTTP/JSON API over registered scenarios (setting + source instance) with
// plan/result caching, per-request deadlines and budgets, and
// bounded-concurrency admission control. See internal/server for the
// architecture and README.md ("Running the server") for the endpoints.
//
// Usage:
//
//	dxserver [-addr :8080] [-max-concurrent N] [-queue-depth N]
//	         [-default-deadline 30s] [-max-deadline 5m] [-max-steps N]
//	         [-max-enum N] [-max-scenarios N] [-max-results N]
//	         [-drain-timeout 10s] [-pprof addr]
//	         [-data-dir DIR] [-fsync always|interval|off]
//	         [-fsync-interval 100ms] [-snapshot-interval 5m]
//	         [-cluster URL,URL,...] [-cluster-self URL]
//	         [-cluster-role auto|node|router]
//	         [-cluster-join URL] [-cluster-drain-leave]
//
// -cluster makes the process a member of a static sharded cluster: the
// comma-separated list names the data nodes, and scenarios are distributed
// across them by a consistent-hash ring keyed on scenario ID (internal/
// cluster). -cluster-self is this process's advertised base URL; when it
// appears in the peer list the process is a data node, otherwise a
// stateless router — override with -cluster-role to fail fast on
// misconfiguration. Every member serves the full API at any entry point:
// requests for scenarios owned elsewhere are forwarded to the owner (with
// retries, deadlines and a hop bound), forwarded read results are
// replicated locally behind ETag revalidation, and a mutation anywhere
// invalidates replicas everywhere by construction, because replicas
// revalidate against the owner's version-keyed tags. See README.md
// ("Running a cluster").
//
// -cluster-join grows a running cluster instead: the process boots with an
// empty ring, contacts the given seed member, and the cluster runs a live
// two-phase transition — the proposed ring is broadcast, exactly the
// scenarios whose owner changed stream to this node as DXB1 blocks while
// both rings route requests, and the new epoch commits once every transfer
// is acknowledged (internal/membership). It requires -cluster-self and is
// exclusive with -cluster. -cluster-drain-leave makes SIGINT/SIGTERM run
// the inverse transition before draining: every scenario this node owns is
// handed off to the surviving members, so a planned shrink loses nothing.
// Without it a killed node's scenarios are simply unreachable (502
// peer_unavailable) until the node returns. See README.md ("Growing and
// shrinking a cluster").
//
// -data-dir enables the durable scenario store (internal/store): every
// registration and mutation is journaled to a write-ahead log in DIR before
// it is acknowledged, snapshots compact the log every -snapshot-interval
// (0 disables the ticker), scenarios evicted from RAM page to disk, and a
// restart recovers the full catalog — resuming incremental engines from
// persisted chase fixpoints instead of re-chasing. -fsync picks the WAL
// durability mode: always (fsync per append; acknowledged writes survive
// power loss), interval (background fsync every -fsync-interval; bounded
// loss window), off (no explicit fsync; survives process kills, not power
// loss). Without -data-dir the server is memory-only, exactly as before.
//
// -pprof serves net/http/pprof profiling endpoints on a separate listener
// (e.g. -pprof localhost:6060 → /debug/pprof/). Off by default; bind it to
// loopback — the profile endpoints are unauthenticated.
//
// On SIGINT/SIGTERM the server stops admitting new work (503), drains
// in-flight requests for -drain-timeout, then aborts whatever is left via
// the evaluation contexts and exits.
//
// dxserver -smoke starts the server on a loopback port, fires a scripted
// request burst through the Go client (register, chase, core, certain
// twice to exercise the result cache, enum, a deliberately timed-out
// request, health and metrics), verifies every response, and exits 0/1 —
// the `make serve-smoke` target. dxserver -smoke-store does the same for
// the durable store (fsync off): register and mutate against a temp
// directory, restart cleanly (zero WAL replay), verify recovered answers
// and the base_version conflict, crash-restart, verify again — the
// `make store-smoke` target. dxserver -smoke-cluster boots a three-node
// loopback cluster and drives register/mutate/query through different
// entry nodes, checking byte-identical answers, the 409 on a stale
// base_version through any entry, and the replicated-cache revalidation —
// the `make cluster-smoke` target. dxserver -smoke-membership boots a
// three-node cluster, keeps traffic running, joins a fourth node live,
// drains one member away, and verifies zero failed requests with exactly
// the ring-moved scenarios transferred — the `make membership-smoke`
// target.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener's DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently evaluating requests (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a slot before 503 (0 = 4×max-concurrent)")
	defaultDeadline := flag.Duration("default-deadline", 30*time.Second, "deadline for requests without deadline_ms")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "cap on request deadlines")
	maxSteps := flag.Int("max-steps", 0, "default chase step budget (0 = library default)")
	maxEnum := flag.Int("max-enum", 0, "cap on /v1/enum solutions (0 = default 256)")
	maxScenarios := flag.Int("max-scenarios", 0, "resident scenario bound (0 = default 128)")
	maxResults := flag.Int("max-results", 0, "cached response bound (0 = default 4096)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled; keep it loopback)")
	dataDir := flag.String("data-dir", "", "durable store directory (empty = memory-only)")
	fsyncMode := flag.String("fsync", "always", "WAL sync mode: always, interval or off")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL fsync period under -fsync interval")
	snapshotInterval := flag.Duration("snapshot-interval", 5*time.Minute, "store snapshot/compaction period (0 = only at shutdown)")
	clusterPeers := flag.String("cluster", "", "comma-separated data-node base URLs; enables cluster mode")
	clusterSelf := flag.String("cluster-self", "", "this process's advertised base URL (required with -cluster)")
	clusterRole := flag.String("cluster-role", "auto", "cluster role: auto, node or router")
	clusterJoin := flag.String("cluster-join", "", "seed member URL: join its cluster live (requires -cluster-self, exclusive with -cluster)")
	clusterDrainLeave := flag.Bool("cluster-drain-leave", false, "hand owned scenarios off to the remaining members before shutting down")
	smoke := flag.Bool("smoke", false, "start on a loopback port, run a scripted request burst, and exit")
	smokeStore := flag.Bool("smoke-store", false, "run the durable-store smoke (register, restart, crash-restart) against a temp dir and exit")
	smokeCluster := flag.Bool("smoke-cluster", false, "run the cluster smoke (3 loopback nodes, requests through every entry) and exit")
	smokeMembership := flag.Bool("smoke-membership", false, "run the membership smoke (live join and drain under traffic) and exit")
	flag.Parse()

	// The profiler gets its own listener and the default mux (where the
	// net/http/pprof import registered itself), so the API handler never
	// exposes /debug/pprof/ and the profile port can stay loopback-only.
	if *pprofAddr != "" {
		go func() {
			log.Printf("dxserver: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("dxserver: pprof listener: %v", err)
			}
		}()
	}

	cfg := server.Config{
		MaxConcurrent:    *maxConcurrent,
		QueueDepth:       *queueDepth,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		DefaultMaxSteps:  *maxSteps,
		MaxEnumSolutions: *maxEnum,
		MaxScenarios:     *maxScenarios,
		MaxResults:       *maxResults,
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dxserver -smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("dxserver -smoke: PASS")
		return
	}
	if *smokeStore {
		if err := runStoreSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dxserver -smoke-store: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("dxserver -smoke-store: PASS")
		return
	}
	if *smokeCluster {
		if err := runClusterSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dxserver -smoke-cluster: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("dxserver -smoke-cluster: PASS")
		return
	}
	if *smokeMembership {
		if err := runMembershipSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dxserver -smoke-membership: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("dxserver -smoke-membership: PASS")
		return
	}

	if *clusterJoin != "" {
		if *clusterPeers != "" {
			log.Fatalf("dxserver: -cluster-join is exclusive with -cluster: a joiner learns the member list from the seed")
		}
		if *clusterSelf == "" {
			log.Fatalf("dxserver: -cluster-join requires -cluster-self (the URL peers reach this process at)")
		}
		cl, err := cluster.NewJoining(*clusterSelf, 0, 0)
		if err != nil {
			log.Fatalf("dxserver: %v", err)
		}
		log.Printf("dxserver: joining cluster via %s as %s", *clusterJoin, cl.Self())
		cfg.Cluster = cl
	}

	if *clusterPeers != "" {
		role, err := cluster.ParseRole(*clusterRole)
		if err != nil {
			log.Fatalf("dxserver: %v", err)
		}
		cl, err := cluster.New(cluster.Config{
			Self:  *clusterSelf,
			Peers: strings.Split(*clusterPeers, ","),
			Role:  role,
		})
		if err != nil {
			log.Fatalf("dxserver: %v", err)
		}
		log.Printf("dxserver: cluster %s %s, ring %s over %d nodes",
			cl.Role(), cl.Self(), cl.RingVersion(), len(cl.Peers()))
		cfg.Cluster = cl
	} else if *clusterSelf != "" && *clusterJoin == "" {
		log.Fatalf("dxserver: -cluster-self requires -cluster or -cluster-join")
	}

	if *dataDir != "" {
		mode, err := store.ParseSyncMode(*fsyncMode)
		if err != nil {
			log.Fatalf("dxserver: %v", err)
		}
		st, err := store.Open(*dataDir, store.Options{Fsync: mode, FsyncInterval: *fsyncInterval})
		if err != nil {
			log.Fatalf("dxserver: opening store: %v", err)
		}
		stats := st.Stats()
		log.Printf("dxserver: store %s: %d scenarios, %d WAL records replayed",
			*dataDir, stats.Scenarios, stats.Replayed)
		cfg.Store = st
	}

	srv := server.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("dxserver: listening on %s", *addr)

	if *clusterJoin != "" {
		// The seed proposes the new ring back to this process over HTTP, so
		// the local listener must answer before the join protocol starts.
		joinCtx, cancelJoin := context.WithTimeout(context.Background(), 2*time.Minute)
		self := client.New(cfg.Cluster.Self())
		for {
			if _, err := self.Health(joinCtx); err == nil {
				break
			}
			select {
			case <-joinCtx.Done():
				log.Fatalf("dxserver: own listener never became reachable at %s — is -cluster-self the URL peers see?", cfg.Cluster.Self())
			case <-time.After(50 * time.Millisecond):
			}
		}
		if err := srv.JoinCluster(joinCtx, *clusterJoin); err != nil {
			log.Fatalf("dxserver: joining via %s: %v", *clusterJoin, err)
		}
		cancelJoin()
		cur := cfg.Cluster.Current()
		log.Printf("dxserver: joined: epoch %d, %d members", cur.Epoch, len(cur.Members))
	}

	// Periodic snapshots bound both recovery time and WAL disk usage; the
	// final snapshot at drain below makes clean restarts replay nothing.
	snapStop := make(chan struct{})
	if cfg.Store != nil && *snapshotInterval > 0 {
		go func() {
			t := time.NewTicker(*snapshotInterval)
			defer t.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-t.C:
					if err := srv.SnapshotNow(); err != nil {
						log.Printf("dxserver: snapshot: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("dxserver: %v", err)
	case s := <-sig:
		log.Printf("dxserver: %v: draining (max %v)", s, *drainTimeout)
	}

	// A planned shrink hands every owned scenario off to the surviving
	// members before the drain, so nothing becomes unreachable. This runs
	// while the listener still serves: the handoff needs the data plane.
	if *clusterDrainLeave && cfg.Cluster != nil {
		leaveCtx, cancelLeave := context.WithTimeout(context.Background(), time.Minute)
		if err := srv.LeaveCluster(leaveCtx); err != nil {
			log.Printf("dxserver: drain-leave failed (scenarios stay here): %v", err)
		} else {
			log.Printf("dxserver: left the cluster: owned scenarios handed off")
		}
		cancelLeave()
	}

	// Graceful shutdown: refuse new evaluations, give in-flight work the
	// drain window, then abort stragglers through their contexts so
	// Shutdown can complete.
	srv.BeginDrain()
	close(snapStop)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(ctx) }()
	select {
	case err := <-shutdownDone:
		if err != nil {
			log.Printf("dxserver: shutdown: %v", err)
		}
	case <-ctx.Done():
		log.Printf("dxserver: drain window expired, aborting in-flight work")
		srv.Abort()
		if err := <-shutdownDone; err != nil {
			log.Printf("dxserver: shutdown after abort: %v", err)
		}
	}
	// The store is finalized after the HTTP server has drained: a last
	// snapshot captures every resident fixpoint, so the next boot recovers
	// from the snapshot alone and replays zero WAL records.
	if cfg.Store != nil {
		if err := srv.CloseStore(); err != nil {
			log.Printf("dxserver: closing store: %v", err)
		}
	}
	log.Printf("dxserver: bye")
}

// runSmoke is the self-contained request burst behind `make serve-smoke`.
func runSmoke(cfg server.Config) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	c := client.New("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  ok: %s\n", name)
		return nil
	}

	const setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`
	const source = `M(a,b). N(a,b). N(a,c).`

	if err := step("register", func() error {
		info, err := c.Register(ctx, api.RegisterRequest{Name: "smoke", Setting: setting, Source: source})
		if err != nil {
			return err
		}
		if !info.WeaklyAcyclic || !info.Chased {
			return fmt.Errorf("expected an eagerly chased weakly acyclic scenario, got %+v", info)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("chase", func() error {
		res, err := c.Chase(ctx, api.EvalRequest{Scenario: "smoke"})
		if err != nil {
			return err
		}
		if res.Atoms == 0 || res.Steps == 0 {
			return fmt.Errorf("empty chase result: %+v", res)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("core", func() error {
		res, err := c.Core(ctx, api.EvalRequest{Scenario: "smoke"})
		if err != nil {
			return err
		}
		if res.Atoms != 3 {
			return fmt.Errorf("Example 2.1 core must have 3 atoms, got %d: %s", res.Atoms, res.Instance)
		}
		return nil
	}); err != nil {
		return err
	}

	certainReq := api.EvalRequest{Scenario: "smoke", Query: `q(x,y) :- E(x,y).`, Semantics: "certain-cup"}
	var first api.CertainResponse
	if err := step("certain (miss)", func() error {
		first, err = c.Certain(ctx, certainReq)
		if err != nil {
			return err
		}
		if len(first.Answers) != 1 {
			return fmt.Errorf("certain⊔ of q(x,y):-E(x,y) must be {(a,b)}, got %v", first.Answers)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("certain (cached)", func() error {
		second, err := c.Certain(ctx, certainReq)
		if err != nil {
			return err
		}
		if fmt.Sprint(second.Answers) != fmt.Sprint(first.Answers) {
			return fmt.Errorf("cached answers differ: %v vs %v", second.Answers, first.Answers)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("enum", func() error {
		n := 0
		sum, err := c.Enum(ctx, api.EvalRequest{Scenario: "smoke", Max: 50}, func(api.EnumSolution) error {
			n++
			return nil
		})
		if err != nil {
			return err
		}
		if !sum.Done || sum.Count != n || n == 0 {
			return fmt.Errorf("bad enum stream: summary %+v after %d lines", sum, n)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("burst of 25 mixed requests", func() error {
		for i := 0; i < 25; i++ {
			switch i % 3 {
			case 0:
				if _, err := c.Core(ctx, api.EvalRequest{Scenario: "smoke"}); err != nil {
					return err
				}
			case 1:
				if _, err := c.Certain(ctx, certainReq); err != nil {
					return err
				}
			default:
				if _, err := c.Exists(ctx, api.EvalRequest{Scenario: "smoke"}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("metrics expose cache hits", func() error {
		text, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		if !strings.Contains(text, "server_cache_hits") {
			return fmt.Errorf("metricsz missing server_cache_hits:\n%s", text)
		}
		return nil
	}); err != nil {
		return err
	}
	return step("health", func() error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		if h.Status != "ok" || h.Scenarios != 1 {
			return fmt.Errorf("unexpected health %+v", h)
		}
		var apiErr *client.APIError
		if _, err := c.Core(ctx, api.EvalRequest{Scenario: "nope"}); !errors.As(err, &apiErr) || apiErr.Code != "unknown_scenario" {
			return fmt.Errorf("lookup of unknown scenario: want unknown_scenario, got %v", err)
		}
		return nil
	})
}

// runStoreSmoke is the durable-store smoke behind `make store-smoke`:
// register and mutate against a temp-dir store (fsync off), restart
// cleanly and verify zero WAL replay plus identical answers and the
// optimistic-concurrency conflict, then crash-restart and verify the WAL
// tail carries the post-snapshot work.
func runStoreSmoke(cfg server.Config) error {
	dir, err := os.MkdirTemp("", "dxserver-store-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const setting = `
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`
	const source = `M(a,b). N(a,b). N(a,c).`

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  ok: %s\n", name)
		return nil
	}

	// start spins up a server over a freshly opened store and returns the
	// pieces plus a closer that does NOT finalize the store (crash-style).
	start := func() (*server.Server, *http.Server, *client.Client, *store.Store, func(), error) {
		st, err := store.Open(dir, store.Options{Fsync: store.SyncOff})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		scfg := cfg
		scfg.Store = st
		srv := server.New(scfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		return srv, hs, client.New("http://" + ln.Addr().String()), st, func() { hs.Close() }, nil
	}

	srv1, _, c1, _, kill1, err := start()
	if err != nil {
		return err
	}
	var firstChase api.ChaseResponse
	var version uint64
	if err := step("register + mutate", func() error {
		if _, err := c1.Register(ctx, api.RegisterRequest{Name: "smoke", Setting: setting, Source: source}); err != nil {
			return err
		}
		res, err := c1.Insert(ctx, "smoke", api.MutateRequest{Tuples: "M(x1,y1)."})
		if err != nil {
			return err
		}
		version = res.Version
		firstChase, err = c1.Chase(ctx, api.EvalRequest{Scenario: "smoke"})
		return err
	}); err != nil {
		return err
	}
	if err := step("clean shutdown (final snapshot)", func() error {
		srv1.BeginDrain()
		kill1()
		return srv1.CloseStore()
	}); err != nil {
		return err
	}

	_, _, c2, st2, kill2, err := start()
	if err != nil {
		return err
	}
	if err := step("clean restart replays zero WAL records", func() error {
		if r := st2.Stats().Replayed; r != 0 {
			return fmt.Errorf("replayed %d records", r)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("recovered scenario answers identically", func() error {
		res, err := c2.Chase(ctx, api.EvalRequest{Scenario: "smoke"})
		if err != nil {
			return err
		}
		if res.Universal != firstChase.Universal {
			return fmt.Errorf("chase diverged:\n%s\nvs\n%s", res.Universal, firstChase.Universal)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := step("stale base_version still conflicts", func() error {
		var apiErr *client.APIError
		_, err := c2.Insert(ctx, "smoke", api.MutateRequest{Tuples: "M(q,r).", BaseVersion: version - 1})
		if !errors.As(err, &apiErr) || apiErr.Code != "conflict" {
			return fmt.Errorf("want conflict, got %v", err)
		}
		_, err = c2.Insert(ctx, "smoke", api.MutateRequest{Tuples: "M(q,r).", BaseVersion: version})
		return err
	}); err != nil {
		return err
	}
	// Crash: abandon the server without CloseStore; the WAL tail alone must
	// carry the post-snapshot mutation.
	kill2()

	_, _, c3, st3, kill3, err := start()
	if err != nil {
		return err
	}
	defer kill3()
	return step("crash restart recovers the WAL tail", func() error {
		if st3.Stats().Replayed == 0 {
			return fmt.Errorf("expected replayed WAL records after crash")
		}
		info, err := c3.Scenario(ctx, "smoke")
		if err != nil {
			return err
		}
		if info.Version != version+1 {
			return fmt.Errorf("recovered version %d, want %d", info.Version, version+1)
		}
		h, err := c3.Health(ctx)
		if err != nil {
			return err
		}
		if !h.Durable || h.StoreScenarios != 1 {
			return fmt.Errorf("healthz misreports the store: %+v", h)
		}
		return nil
	})
}
