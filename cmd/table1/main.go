// Command table1 regenerates the paper's Table 1: the complexity of
// certain⊓ and certain⊔ across setting classes and query classes, with
// each entry backed by a measured scaling series or a validated reduction.
package main

import (
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	cells := harness.Table1()
	fmt.Print(harness.Table1Report(cells))
	for _, c := range cells {
		if !c.OK {
			fmt.Fprintf(os.Stderr, "cell (%s, %s) failed\n", c.Row, c.Col)
			os.Exit(1)
		}
	}
}
