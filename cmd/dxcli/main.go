// Command dxcli is a small command-line front end to the library: it loads
// a data exchange setting and a source instance from files and chases,
// computes CWA-solutions, or answers queries.
//
// Usage:
//
//	dxcli chase   -setting FILE -source FILE
//	dxcli alpha   -setting FILE -source FILE -target FILE   (justification witnesses)
//	dxcli core    -setting FILE -source FILE
//	dxcli cansol  -setting FILE -source FILE
//	dxcli exists  -setting FILE -source FILE
//	dxcli check   -setting FILE -source FILE -target FILE
//	dxcli certain -setting FILE -source FILE -query 'q(x) :- E(x,y).' [-sem certain-cap|certain-cup|maybe-cap|maybe-cup]
//	dxcli enum    -setting FILE -source FILE [-max N]
//	dxcli apply   -setting FILE -source FILE -mutations FILE [-crosscheck]
//	dxcli info    -setting FILE
//
// apply replays a mutation script (lines of "+ A(a,b)." / "- B(c)." with
// # comments) against the incremental-maintenance engine: the initial
// source is chased once, then each line is applied as one batch — inserts
// delta-chase, deletes retract through the justification graph — and the
// final maintained solution is printed. With -crosscheck the result is
// verified against a from-scratch chase of the mutated source
// (hom-equivalence both ways plus core isomorphism).
//
// Every command also accepts -max-steps (chase step budget), -timeout
// (wall-clock limit; the run aborts with ErrCanceled), -workers (goroutines
// for certain/enum; 0 = GOMAXPROCS), -metrics (print evaluation counters
// to stderr on exit), and the profiling flags -cpuprofile FILE /
// -memprofile FILE (pprof profiles, written even when the run ends in an
// error — so a -timeout'd run can still be profiled).
//
// Exit codes (the same table internal/status maps to dxserver's HTTP
// statuses, so shell scripts and HTTP clients share one taxonomy):
//
//	0  success
//	1  no (CWA-)solution exists (the chase failed on an egd)
//	2  usage or parse error (bad flags, malformed setting/instance/query)
//	3  resource limit: -timeout expired, -max-steps budget exhausted, or a
//	   size bound (too many nulls, enumeration truncated) refused the run
//	4  internal/unexpected error
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro"
	"repro/internal/cwa"
	"repro/internal/hom"
	"repro/internal/incr"
	"repro/internal/metrics"
	"repro/internal/score"
	"repro/internal/status"
)

// showMetrics makes fatal and the normal exit path print the counter
// snapshot, so a run aborted by -timeout still reports its effort.
var showMetrics bool

// stopProfiles flushes any active pprof profiles. It is installed by
// startProfiles and invoked from both exit paths (normal return and fatal),
// so profiles survive runs that end in an error. Idempotent.
var stopProfiles = func() {}

// startProfiles begins CPU profiling and arranges for the heap profile,
// according to the -cpuprofile/-memprofile flags.
func startProfiles(cpu, mem string) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	stopProfiles = func() {
		stopProfiles = func() {}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dxcli: -memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dxcli: -memprofile:", err)
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	settingPath := fs.String("setting", "", "path to the setting file")
	sourcePath := fs.String("source", "", "path to the source instance file")
	targetPath := fs.String("target", "", "path to a target instance file (for check)")
	queryText := fs.String("query", "", "query text (for certain)")
	mutationsPath := fs.String("mutations", "", "path to a mutation script (for apply)")
	crosscheck := fs.Bool("crosscheck", false, "verify the maintained result against a from-scratch chase (for apply)")
	semName := fs.String("sem", "certain-cap", "semantics: certain-cap, certain-cup, maybe-cap, maybe-cup")
	maxSteps := fs.Int("max-steps", 0, "chase step budget (0 = default)")
	maxSols := fs.Int("max", 0, "maximum solutions to enumerate (0 = unbounded)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit; aborts with ErrCanceled (0 = none)")
	workers := fs.Int("workers", 0, "worker goroutines for certain/enum (0 = GOMAXPROCS, 1 = sequential)")
	fs.BoolVar(&showMetrics, "metrics", false, "print evaluation counters to stderr on exit")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(status.WithKind(err, status.Usage))
	}
	startProfiles(*cpuProfile, *memProfile)

	s := loadSetting(*settingPath)
	opt := repro.ChaseOptions{MaxSteps: *maxSteps}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Ctx = ctx
	}

	switch cmd {
	case "info":
		fmt.Print(s)
		fmt.Println("weakly acyclic: ", repro.WeaklyAcyclic(s))
		fmt.Println("richly acyclic: ", repro.RichlyAcyclic(s))
		fmt.Println("egds only:      ", s.EgdsOnly())
		fmt.Println("full tgds+egds: ", s.FullAndEgds())
	case "chase":
		src := loadInstance(*sourcePath)
		res, err := repro.Chase(s, src, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("steps: %d\nuniversal solution: %v\n", res.Steps, res.Target)
	case "core":
		src := loadInstance(*sourcePath)
		core, err := repro.CWASolution(s, src, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minimal CWA-solution (core): %v\n", core)
	case "cansol":
		src := loadInstance(*sourcePath)
		can, err := repro.CanSol(s, src, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("canonical solution: %v\n", can)
	case "exists":
		src := loadInstance(*sourcePath)
		ok, err := repro.ExistsCWASolution(s, src, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println("CWA-solution exists:", ok)
	case "check":
		src := loadInstance(*sourcePath)
		tgt := loadInstance(*targetPath)
		fmt.Println("solution:         ", repro.IsSolution(s, src, tgt))
		fmt.Println("CWA-presolution:  ", repro.IsCWAPresolution(s, src, tgt))
		ok, err := repro.IsCWASolution(s, src, tgt, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println("CWA-solution:     ", ok)
	case "alpha":
		src := loadInstance(*sourcePath)
		tgt := loadInstance(*targetPath)
		alpha, ok := cwa.FindPresolutionAlpha(s, src, tgt)
		if !ok {
			fmt.Println("not a CWA-presolution: no justification assignment produces it")
			os.Exit(1)
		}
		fmt.Println("justification witnesses (α restricted to the used justifications):")
		keys := make([]string, 0, len(alpha))
		for k := range alpha {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w := alpha[k]
			if len(w) == 0 {
				fmt.Printf("  %s  (full tgd, no existential values)\n", k)
				continue
			}
			vars := make([]string, 0, len(w))
			for z := range w {
				vars = append(vars, z)
			}
			sort.Strings(vars)
			fmt.Printf("  %s  ↦ ", k)
			for i, z := range vars {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s=%v", z, w[z])
			}
			fmt.Println()
		}
	case "certain":
		src := loadInstance(*sourcePath)
		u, err := repro.ParseUCQ(*queryText)
		if err != nil {
			fatal(status.WithKind(fmt.Errorf("parsing query: %w", err), status.Usage))
		}
		sem, ok := map[string]repro.Semantics{
			"certain-cap": repro.CertainCap,
			"certain-cup": repro.CertainCup,
			"maybe-cap":   repro.MaybeCap,
			"maybe-cup":   repro.MaybeCup,
		}[*semName]
		if !ok {
			fatal(status.WithKind(fmt.Errorf("unknown semantics %q", *semName), status.Usage))
		}
		ans, err := repro.Answers(s, u, src, sem, repro.CertainOptions{Chase: opt, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s answers: %v\n", *semName, ans)
	case "enum":
		src := loadInstance(*sourcePath)
		sols, err := repro.EnumerateCWASolutions(s, src,
			repro.EnumOptions{MaxSolutions: *maxSols, ChaseOptions: opt, Workers: *workers})
		if errors.Is(err, cwa.ErrEnumerationTruncated) && *maxSols > 0 {
			// Hitting a user-requested cap is the expected outcome, not a
			// failure; report the (possibly partial) space.
			fmt.Fprintln(os.Stderr, "dxcli: enumeration truncated at -max bound")
		} else if err != nil {
			fatal(err)
		}
		cwa.SortBySize(sols)
		fmt.Print(cwa.DescribeSpace(sols))
	case "apply":
		src := loadInstance(*sourcePath)
		runApply(s, src, *mutationsPath, *crosscheck, opt)
	default:
		usage()
	}
	stopProfiles()
	reportMetrics()
}

// runApply implements the apply command: replay a mutation script against
// the incremental engine, one script line per batch, then print (and
// optionally crosscheck) the maintained solution.
func runApply(s *repro.Setting, src *repro.Instance, path string, crosscheck bool, opt repro.ChaseOptions) {
	if path == "" {
		fatal(status.WithKind(fmt.Errorf("-mutations is required"), status.Usage))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(status.WithKind(err, status.Usage))
	}
	muts, err := incr.ParseScript(string(data))
	if err != nil {
		fatal(status.WithKind(err, status.Usage))
	}
	eng, err := incr.New(s, src, opt)
	if err != nil {
		if errors.Is(err, incr.ErrNotIncremental) {
			err = status.WithKind(err, status.Usage)
		}
		fatal(err)
	}
	res, err := eng.Apply(muts, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("applied: +%d -%d (version %d", res.Inserted, res.Deleted, res.Version)
	if res.Fallback {
		fmt.Print(", full re-chase")
	} else {
		fmt.Printf(", %d delta steps", res.Steps)
	}
	fmt.Println(")")
	if res.NoSolution {
		// Surface the recorded egd failure with the standard exit code.
		_, err := eng.Solution(opt)
		fatal(err)
	}
	sol, err := eng.Solution(opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("maintained solution: %v\n", sol)
	if crosscheck {
		scratch, err := repro.Chase(s, eng.SourceSnapshot(), opt)
		if err != nil {
			fatal(fmt.Errorf("crosscheck chase: %w", err))
		}
		if !hom.Exists(sol, scratch.Target) || !hom.Exists(scratch.Target, sol) {
			fatal(fmt.Errorf("crosscheck failed: maintained solution is not hom-equivalent to a from-scratch chase"))
		}
		if !hom.Isomorphic(score.Core(sol), score.Core(scratch.Target)) {
			fatal(fmt.Errorf("crosscheck failed: cores are not isomorphic"))
		}
		fmt.Println("crosscheck: ok (hom-equivalent, isomorphic cores)")
	}
}

// reportMetrics prints the counter snapshot to stderr when -metrics is set.
func reportMetrics() {
	if showMetrics {
		fmt.Fprintln(os.Stderr, "metrics:", metrics.Read())
	}
}

func loadSetting(path string) *repro.Setting {
	if path == "" {
		fatal(status.WithKind(fmt.Errorf("-setting is required"), status.Usage))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(status.WithKind(err, status.Usage))
	}
	s, err := repro.ParseSetting(string(data))
	if err != nil {
		fatal(status.WithKind(fmt.Errorf("parsing %s: %w", path, err), status.Usage))
	}
	return s
}

func loadInstance(path string) *repro.Instance {
	if path == "" {
		fatal(status.WithKind(fmt.Errorf("-source/-target file is required"), status.Usage))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(status.WithKind(err, status.Usage))
	}
	ins, err := repro.ParseInstance(string(data))
	if err != nil {
		fatal(status.WithKind(fmt.Errorf("parsing %s: %w", path, err), status.Usage))
	}
	return ins
}

// fatal reports the error and exits with the internal/status exit code for
// its classification (see the package comment's table).
func fatal(err error) {
	stopProfiles()
	reportMetrics()
	fmt.Fprintln(os.Stderr, "dxcli:", err)
	code := status.Classify(err).ExitCode()
	if code == 0 {
		code = 4 // fatal is never called on success
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dxcli <chase|alpha|core|cansol|exists|check|certain|enum|apply|info> [flags]
run "dxcli <cmd> -h" for flags`)
	os.Exit(2)
}
