// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark runs can be committed as
// machine-readable points of the repo's perf trajectory (BENCH_<pr>.json).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-before FILE] > BENCH_N.json
//
// Each benchmark maps to its ns/op, B/op and allocs/op, averaged when the
// run used -count > 1. Benchmarks are keyed as "<pkg>.<name>" (the pkg:
// header lines of the bench output), with any -GOMAXPROCS suffix stripped.
//
// With -before, FILE is a previous run in the same text format; the output
// then carries before/after pairs plus the speedup (before ns / after ns)
// and alloc-reduction (before allocs / after allocs) ratios per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// metrics holds one benchmark's per-op numbers.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// entry is one benchmark in the combined output. Before and the ratios are
// only present when -before was given and the benchmark appears in both
// runs.
type entry struct {
	Before      *metrics `json:"before,omitempty"`
	After       *metrics `json:"after,omitempty"`
	Speedup     float64  `json:"speedup,omitempty"`
	AllocsRatio float64  `json:"allocs_ratio,omitempty"`
}

type accum struct {
	metrics
	runs int
}

// parseBench reads `go test -bench` output, averaging repeated lines
// (-count > 1) per benchmark.
func parseBench(r io.Reader) (map[string]*accum, error) {
	out := make(map[string]*accum)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so runs on different machines compare.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		a := out[name]
		if a == nil {
			a = &accum{}
			out[name] = a
		}
		a.runs++
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %v", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				a.NsPerOp += v
			case "B/op":
				a.BytesPerOp += v
			case "allocs/op":
				a.AllocsPerOp += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, a := range out {
		n := float64(a.runs)
		a.NsPerOp /= n
		a.BytesPerOp /= n
		a.AllocsPerOp /= n
	}
	return out, nil
}

func main() {
	beforePath := flag.String("before", "", "baseline `go test -bench` output to diff against")
	flag.Parse()

	after, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var before map[string]*accum
	if *beforePath != "" {
		f, err := os.Open(*beforePath)
		if err != nil {
			fatal(err)
		}
		before, err = parseBench(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	combined := make(map[string]*entry, len(after))
	for name, a := range after {
		m := a.metrics
		combined[name] = &entry{After: &m}
	}
	for name, b := range before {
		e := combined[name]
		if e == nil {
			e = &entry{}
			combined[name] = e
		}
		m := b.metrics
		e.Before = &m
		if e.After != nil {
			if e.After.NsPerOp > 0 {
				e.Speedup = round2(m.NsPerOp / e.After.NsPerOp)
			}
			if e.After.AllocsPerOp > 0 {
				e.AllocsRatio = round2(m.AllocsPerOp / e.After.AllocsPerOp)
			}
		}
	}

	// encoding/json sorts map keys, so the file is deterministic and diffs
	// cleanly across runs.
	doc := struct {
		Benchmarks map[string]*entry `json:"benchmarks"`
	}{Benchmarks: combined}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
