// Command exponential reproduces Example 5.3: a two-dependency setting
// under which the source S_n = {P(1), …, P(n)} has at least 2^n pairwise
// incomparable CWA-solutions — so maximal CWA-solutions need not exist.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/cwa"
	"repro/internal/genwl"
)

func main() {
	s := genwl.Example53()
	fmt.Println("setting (Example 5.3):")
	fmt.Println(s)

	for n := 1; n <= 2; n++ {
		src := genwl.Example53Source(n)
		sols, err := repro.EnumerateCWASolutions(s, src, repro.EnumOptions{MaxStates: 500000})
		if err != nil {
			log.Fatal(err)
		}
		cwa.SortBySize(sols)
		_, inc := cwa.Incomparable(sols)
		fmt.Printf("\nS_%d = %v\n", n, src)
		fmt.Printf("  CWA-solutions up to isomorphism: %d\n", len(sols))
		fmt.Printf("  pairwise incomparable (no one a homomorphic image of another): %d  (paper: ≥ 2^%d = %d)\n",
			len(inc), n, 1<<n)
		if n == 1 {
			for _, sol := range sols {
				fmt.Printf("    %v\n", sol)
			}
		}
	}

	// The paper's concrete witnesses T and T' for n = 1.
	src := genwl.Example53Source(1)
	T, _ := repro.ParseInstance(`E(1,_1,_3). E(1,_2,_4). F(1,_1,_1). F(1,_2,_2).`)
	Tp, _ := repro.ParseInstance(`E(1,_1,_3). E(1,_2,_3). F(1,_1,_1). F(1,_2,_2). F(1,_1,_2). F(1,_2,_1).`)
	for name, cand := range map[string]*repro.Instance{"T": T, "T'": Tp} {
		ok, err := repro.IsCWASolution(s, src, cand, repro.ChaseOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npaper witness %s is a CWA-solution: %v", name, ok)
	}
	fmt.Println()
}
