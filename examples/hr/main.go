// Command hr runs a realistic schema-migration scenario — the kind of
// source-to-target restructuring the paper's introduction motivates — and
// shows what the CWA machinery buys over plain chasing:
//
//   - a legacy HR database (flat Emp records and a DeptMgr table) is
//     mapped into a normalized target (Employee, Dept, WorksIn, Manages),
//   - existential tgds invent department ids for employees whose department
//     is only known by name,
//   - target egds enforce keys (one manager per department, one department
//     id per name),
//   - a target tgd requires every manager to be an employee of the
//     department they manage.
//
// The example computes the minimal CWA-solution, answers queries under the
// certain-answers semantics, and shows a key violation being detected.
package main

import (
	"fmt"
	"log"

	"repro"
)

const hrSetting = `
source Emp/3, DeptMgr/2.
# Emp(name, deptName, salaryBand); DeptMgr(deptName, managerName)
target Employee/2, Dept/2, WorksIn/2, Manages/2.
# Employee(name, band); Dept(deptId, deptName); WorksIn(name, deptId);
# Manages(managerName, deptId)
st:
  emp:  Emp(n,d,b) -> exists i : Employee(n,b) & Dept(i,d) & WorksIn(n,i).
  mgr:  DeptMgr(d,m) -> exists i : Dept(i,d) & Manages(m,i).
target-deps:
  # Keys: a department name has one id; a department has one manager.
  deptKey: Dept(i,d) & Dept(j,d) -> i = j.
  mgrKey:  Manages(m,i) & Manages(n,i) -> m = n.
  # Managers work in the department they manage.
  mgrWorks: Manages(m,i) -> WorksIn(m,i).
`

func main() {
	s, err := repro.ParseSetting(hrSetting)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HR migration setting:")
	fmt.Println(s)
	fmt.Println("weakly acyclic:", repro.WeaklyAcyclic(s))

	src, err := repro.ParseInstance(`
Emp(ada, research, senior).
Emp(bob, research, junior).
Emp(cyd, sales, senior).
DeptMgr(research, ada).
DeptMgr(sales, eve).
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlegacy source:", src)

	sol, err := repro.CWASolution(s, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nminimal CWA-solution (department ids are labeled nulls):")
	for _, a := range sol.Atoms() {
		fmt.Println("  ", a)
	}

	// Certain answers: who certainly works in the same department as ada?
	// (Constants in queries are quoted; bare identifiers are variables.)
	q, err := repro.ParseUCQ(`q(x) :- WorksIn(x,i), WorksIn('ada',i).`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := repro.CertainAnswersUCQ(s, q, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncertainly in ada's department:", ans)

	// Note what the CWA adds: eve manages sales, so mgrWorks puts eve into
	// sales; the egd deptKey merges the invented sales ids; hence cyd and
	// eve certainly share a department even though no source row says so.
	q2, err := repro.ParseUCQ(`q() :- WorksIn('cyd',i), WorksIn('eve',i).`)
	if err != nil {
		log.Fatal(err)
	}
	ans2, err := repro.CertainAnswersUCQ(s, q2, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cyd and eve certainly share a department:", ans2.Len() == 1)

	// Key violation: two managers for one department make the egd fail —
	// no solution at all.
	bad := src.Clone()
	badAtom, _ := repro.ParseInstance(`DeptMgr(research, bob).`)
	bad.AddAll(badAtom)
	_, err = repro.CWASolution(s, bad, repro.ChaseOptions{})
	fmt.Println("\nadding a second research manager:")
	fmt.Println("  ", err)
	exists, err2 := repro.ExistsCWASolution(s, bad, repro.ChaseOptions{})
	if err2 != nil {
		log.Fatal(err2)
	}
	fmt.Println("   CWA-solution exists:", exists)
}
