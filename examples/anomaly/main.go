// Command anomaly reproduces the Section 3 anomaly of the certain answers
// semantics: under a copying data exchange setting, the open-world certain
// answers of Libkin's query lose the entire b-cycle, while the CWA
// semantics return exactly Q evaluated on the copied instance — the answer
// one intuitively expects.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/genwl"
	"repro/internal/query"
)

func main() {
	s := genwl.Copying()
	src := genwl.TwoNineCycles()
	fmt.Println("copying setting:")
	fmt.Println(s)
	fmt.Printf("source: two disjoint 9-cycles (a0..a8, b0..b8) with P(a4), %d atoms\n\n", src.Len())

	q, err := repro.ParseFOQuery(`(x) . Pp(x) | exists y,z (Pp(y) & Ep(y,z) & !(Pp(z)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query Q(x) = Pp(x) ∨ ∃y∃z (Pp(y) ∧ Ep(y,z) ∧ ¬Pp(z))")

	// The copied instance S' — the intuitively-right target.
	copied := repro.NewInstance()
	for _, a := range src.Atoms() {
		rel := map[string]string{"E": "Ep", "P": "Pp"}[a.Rel]
		copied.Add(repro.Atom{Rel: rel, Args: a.Args})
	}
	onCopy := query.NewTupleSet(q.Answers(copied)...)
	fmt.Printf("\nQ(S′) — evaluated on the plain copy: %d answers (all 18 nodes)\n", onCopy.Len())

	// The spoiler solution S'': add Pp(a_i) for every i. It is a valid OWA
	// solution, and Q on it returns only the a-nodes — so the OWA certain
	// answers can never contain a b-node.
	spoiler := copied.Clone()
	for i := 0; i < 9; i++ {
		spoiler.Add(repro.NewAtom("Pp", repro.Const(fmt.Sprintf("a%d", i))))
	}
	if !repro.IsSolution(s, src, spoiler) {
		log.Fatal("spoiler must be a solution")
	}
	onSpoiler := query.NewTupleSet(q.Answers(spoiler)...)
	fmt.Printf("Q(S″) — on the spoiler solution (all a-nodes labelled P): %d answers\n", onSpoiler.Len())
	fmt.Printf("⇒ OWA certain answers ⊆ Q(S″): at most %d answers — the b-cycle is lost\n\n", onSpoiler.Len())

	// The CWA semantics: the unique CWA-solution of a copying setting is the
	// copy itself, and all four semantics return Q(S′).
	for _, sem := range []repro.Semantics{repro.CertainCap, repro.CertainCup, repro.MaybeCap, repro.MaybeCup} {
		ans, err := repro.Answers(s, q, src, sem, repro.CertainOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CWA %v: %d answers (= Q(S′): %v)\n", sem, ans.Len(), ans.Equal(onCopy))
	}
}
