// Command semigroup demonstrates Example 6.1: under the
// Kolaitis–Panttaja–Tan setting D_emb, the source S = {R(0,1,1)} has
// solutions — addition modulo k+2 is a finite total associative extension —
// but no CWA-solution: every α-chase keeps inventing new elements forever.
// The undecidability reduction for Existence-of-Solutions therefore does
// not carry over to CWA-solutions (which need Theorem 6.2's D_halt instead).
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/semigroup"
)

func main() {
	s := semigroup.DembSetting()
	fmt.Println("D_emb (Example 6.1); weakly acyclic:", s.WeaklyAcyclic())

	p := semigroup.Example61Partial()
	src, err := semigroup.SourceInstance(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partial operation p(0,1) = 1, source:", src)

	// Solutions exist: Z_{k+2} with addition.
	for _, k := range []int{0, 2} {
		sol := semigroup.ZkSolution(k)
		fmt.Printf("Z_%d (addition mod %d, %d products) is a solution: %v\n",
			k+2, k+2, sol.Len(), chase.IsSolution(s, src, sol))
	}

	// The brute-force baseline finds the smallest associative extension.
	found, size := semigroup.EmbeddingBrute(p, 4)
	fmt.Printf("brute-force embedding search: found=%v, smallest size=%d\n\n", found, size)

	// But the chase — standard or canonical α — never terminates, so no
	// CWA-solution (and no universal solution) exists.
	fmt.Println("chasing S with D_emb under growing budgets:")
	for _, budget := range []int{100, 400, 1600} {
		res, err := chase.Standard(s, src, chase.Options{MaxSteps: budget})
		if errors.Is(err, chase.ErrBudgetExceeded) {
			fmt.Printf("  budget %5d: still growing — %d Rp atoms, %d nulls\n",
				budget, res.Target.Len(), len(res.Target.Nulls()))
		} else {
			fmt.Printf("  budget %5d: unexpected outcome %v\n", budget, err)
		}
	}
	_, _, err = chase.Canonical(s, src, chase.Options{MaxSteps: 1000})
	fmt.Println("canonical α-chase:", err)
	fmt.Println("\n⇒ solutions exist, CWA-solutions do not (Example 6.1)")
}
