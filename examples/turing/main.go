// Command turing demonstrates Theorem 6.2: the fixed data exchange setting
// D_halt simulates Turing machines, so Existence-of-CWA-Solutions is
// undecidable. For a halting machine the chase terminates and its decoded
// run matches the interpreter step for step; for a looping machine the
// chase exhausts every budget.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/cwa"
	"repro/internal/turing"
)

func main() {
	s := turing.DHaltSetting()
	fmt.Println("D_halt (Theorem 6.2); weakly acyclic:", s.WeaklyAcyclic())

	m := turing.ZigzagMachine(3)
	fmt.Printf("\nmachine %q: walk right 3 cells writing 1, walk back, halt\n", m.Name)
	src, err := turing.SourceInstance(m)
	if err != nil {
		log.Fatal(err)
	}
	res, err := chase.Standard(s, src, chase.Options{MaxSteps: 200000})
	if err != nil {
		log.Fatal(err)
	}
	configs, err := turing.DecodeRun(res.Target)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := m.Run(1000)
	fmt.Printf("chase: %d steps encode %d machine configurations\n", res.Steps, len(configs))
	for i, c := range configs {
		match := "✓"
		if i >= len(want) || !c.Equal(want[i]) {
			match = "✗"
		}
		fmt.Printf("  step %d: %v  interpreter-match %s\n", i, c, match)
	}

	exists, err := cwa.Exists(s, src, chase.Options{MaxSteps: 200000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("halting machine ⇒ CWA-solution exists:", exists)

	loop := turing.LoopMachine()
	loopSrc, _ := turing.SourceInstance(loop)
	fmt.Printf("\nmachine %q: move right forever\n", loop.Name)
	for _, budget := range []int{500, 2000, 8000} {
		res, err := chase.Standard(s, loopSrc, chase.Options{MaxSteps: budget})
		if errors.Is(err, chase.ErrBudgetExceeded) {
			fmt.Printf("  budget %5d: chase still running, %d target atoms so far\n", budget, res.Target.Len())
		} else {
			fmt.Printf("  budget %5d: unexpected outcome %v\n", budget, err)
		}
	}
	fmt.Println("non-halting machine ⇒ the chase never succeeds: no CWA-solution")
}
