// Command quickstart walks through the paper's running example
// (Example 2.1) end to end: parse a setting and a source instance, chase,
// compute the minimal CWA-solution (the core), check a hand-written target
// instance, and answer a query under the certain-answers semantics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s, err := repro.ParseSetting(`
source M/2, N/2.
target E/2, F/2, G/2.
st:
  d1: M(x1,x2) -> E(x1,x2).
  d2: N(x,y) -> exists z1,z2 : E(x,z1) & F(x,z2).
target-deps:
  d3: F(y,x) -> exists z : G(x,z).
  d4: F(x,y) & F(x,z) -> y = z.
`)
	if err != nil {
		log.Fatal(err)
	}
	src, err := repro.ParseInstance(`M(a,b). N(a,b). N(a,c).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("setting (Example 2.1):")
	fmt.Println(s)
	fmt.Println("source instance:", src)
	fmt.Println("weakly acyclic:", repro.WeaklyAcyclic(s), " richly acyclic:", repro.RichlyAcyclic(s))

	res, err := repro.Chase(s, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstandard chase: %d steps\nuniversal solution: %v\n", res.Steps, res.Target)

	core, err := repro.CWASolution(s, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nminimal CWA-solution (the core, Theorem 5.1):", core)

	// The paper's T2 is a CWA-solution, T1 is not (no hom into T2).
	t2, _ := repro.ParseInstance(`E(a,b). E(a,_1). E(a,_2). F(a,_3). G(_3,_4).`)
	t1, _ := repro.ParseInstance(`E(a,b). E(a,_1). E(c,_2). F(a,d). G(d,_3).`)
	for name, cand := range map[string]*repro.Instance{"T1": t1, "T2": t2} {
		ok, err := repro.IsCWASolution(s, src, cand, repro.ChaseOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s is a CWA-solution: %v\n", name, ok)
	}

	q, err := repro.ParseUCQ(`
q(x,y) :- E(x,y).
q(x,y) :- F(x,y).
`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := repro.CertainAnswersUCQ(s, q, src, repro.ChaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertain answers of %v:\n  %v\n", q, ans)
}
